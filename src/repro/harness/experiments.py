"""Experiment runners regenerating the paper's evaluation artifacts.

Each function mirrors one table/figure or text claim of §4 (see DESIGN.md's
per-experiment index). Reported times follow the paper's protocol: the
average of three identical runs, with COLD meaning all buffers flushed
before each run and HOT meaning buffers pre-loaded by running the same query
beforehand.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Union

from ..core.cache import IngestionCache
from ..core.executor import TwoStageExecutor
from ..db.database import Database
from .setup import BenchEnvironment

Engine = Union[Database, TwoStageExecutor]


def _engine_db(engine: Engine) -> Database:
    return engine.db if isinstance(engine, TwoStageExecutor) else engine


def _execute_seconds(engine: Engine, sql: str) -> float:
    """One timed run: wall-clock CPU plus simulated disk seconds."""
    db = _engine_db(engine)
    io_before = db.buffers.stats.simulated_seconds
    started = time.perf_counter()
    engine.execute(sql)
    elapsed = time.perf_counter() - started
    return elapsed + (db.buffers.stats.simulated_seconds - io_before)


def run_cold(engine: Engine, sql: str, runs: int = 3) -> float:
    """Average of ``runs`` cold executions (buffers flushed before each)."""
    total = 0.0
    for _ in range(runs):
        _engine_db(engine).make_cold()
        total += _execute_seconds(engine, sql)
    return total / runs


def run_hot(engine: Engine, sql: str, runs: int = 3) -> float:
    """Average of ``runs`` hot executions (buffers pre-loaded by a warm-up
    run of the same query, as the paper does)."""
    _execute_seconds(engine, sql)  # warm-up
    total = 0.0
    for _ in range(runs):
        total += _execute_seconds(engine, sql)
    return total / runs


# -- Table 1 -------------------------------------------------------------------


@dataclass
class Table1Row:
    """"Dataset and sizes": records per table and storage footprints."""

    f_records: int
    r_records: int
    d_records: int
    mseed_bytes: int  # the file repository
    monetdb_bytes: int  # database storage after eager load, no indexes
    keys_bytes: int  # additional primary/foreign key index storage
    ali_bytes: int  # loaded metadata only


def run_table1(env: BenchEnvironment) -> Table1Row:
    return Table1Row(
        f_records=env.ei_report.files,
        r_records=env.ei_report.records,
        d_records=env.ei_report.samples,
        mseed_bytes=env.repository.total_bytes(),
        monetdb_bytes=env.ei_report.data_bytes,
        keys_bytes=env.ei_report.index_bytes,
        ali_bytes=env.ali_report.metadata_bytes,
    )


# -- Figure 3 ------------------------------------------------------------------


@dataclass
class Fig3Entry:
    """One bar of Figure 3."""

    query: str  # "Query 1" | "Query 2"
    system: str  # "Ei" | "ALi"
    state: str  # "COLD" | "HOT"
    seconds: float


def run_figure3(env: BenchEnvironment, runs: int = 3) -> list[Fig3Entry]:
    """All eight bars of Figure 3 ("Querying N files")."""
    entries: list[Fig3Entry] = []
    for query_name, sql in (
        ("Query 1", env.queries.query1),
        ("Query 2", env.queries.query2),
    ):
        for system, engine in (
            ("Ei", env.ei),
            ("ALi", env.fresh_executor()),
        ):
            entries.append(
                Fig3Entry(query_name, system, "COLD", run_cold(engine, sql, runs))
            )
            entries.append(
                Fig3Entry(query_name, system, "HOT", run_hot(engine, sql, runs))
            )
    return entries


# -- §4 text claims -----------------------------------------------------------------


@dataclass
class IngestionReport:
    """Up-front costs: the "orders of magnitude" initialization claim."""

    ei_load_seconds: float
    ei_index_seconds: float
    ali_load_seconds: float
    index_to_load_ratio: float
    speedup: float  # Ei total / ALi total
    ei_total_bytes: int
    ali_bytes: int
    space_ratio: float


def ingestion_report(env: BenchEnvironment) -> IngestionReport:
    ei, ali = env.ei_report, env.ali_report
    return IngestionReport(
        ei_load_seconds=ei.load_seconds,
        ei_index_seconds=ei.index_seconds,
        ali_load_seconds=ali.load_seconds,
        index_to_load_ratio=(
            ei.index_seconds / ei.load_seconds if ei.load_seconds else 0.0
        ),
        speedup=(
            ei.total_seconds / ali.load_seconds if ali.load_seconds else 0.0
        ),
        ei_total_bytes=ei.total_bytes,
        ali_bytes=ali.metadata_bytes,
        space_ratio=(
            ei.total_bytes / ali.metadata_bytes if ali.metadata_bytes else 0.0
        ),
    )


@dataclass
class SweepEntry:
    """One point of the data-of-interest sweep (best case → worst case)."""

    fraction: float
    files_of_interest: int
    tuples_mounted: int
    seconds: float


def interest_sweep(
    env: BenchEnvironment,
    queries: list[tuple[float, str]],
    run: Callable[[Engine, str], float] | None = None,
) -> list[SweepEntry]:
    """Query time as the data of interest grows from none to the whole
    repository — §4: "query performance of ALi is dependent on the size of
    data of interest"."""
    entries = []
    for fraction, sql in queries:
        executor = env.fresh_executor(cache=IngestionCache())
        env.ali.make_cold()
        started = time.perf_counter()
        outcome = executor.execute(sql)
        elapsed = time.perf_counter() - started
        entries.append(
            SweepEntry(
                fraction=fraction,
                files_of_interest=outcome.breakpoint.n_files,
                tuples_mounted=outcome.result.stats.files_mounted,
                seconds=elapsed + outcome.result.io.simulated_seconds,
            )
        )
    return entries
