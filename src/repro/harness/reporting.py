"""Paper-style rendering of experiment results."""

from __future__ import annotations

from .experiments import Fig3Entry, IngestionReport, SweepEntry, Table1Row


def _human_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if value < 1024 or unit == "TB":
            return f"{value:,.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    return f"{value:,.1f} TB"


def render_table1(row: Table1Row) -> str:
    """The same row layout as the paper's Table 1: "Dataset and sizes"."""
    lines = [
        "Table 1: Dataset and sizes",
        "records per table                      | size",
        "F          R            D             | mSEED      DB(no keys)  +keys      ALi",
        (
            f"{row.f_records:<10,} {row.r_records:<12,} {row.d_records:<13,} | "
            f"{_human_bytes(row.mseed_bytes):<10} "
            f"{_human_bytes(row.monetdb_bytes):<12} "
            f"{_human_bytes(row.keys_bytes):<10} "
            f"{_human_bytes(row.ali_bytes)}"
        ),
    ]
    return "\n".join(lines)


def render_figure3(entries: list[Fig3Entry], files: int) -> str:
    """Figure 3 as text: grouped series, seconds on a log scale in the
    paper — rendered here as a table plus Ei/ALi ratios."""
    lines = [f"Figure 3: Querying {files} files (seconds, avg of runs)"]
    lines.append(f"{'query':<10} {'state':<6} {'Ei':>12} {'ALi':>12} {'Ei/ALi':>8}")
    by_key = {(e.query, e.system, e.state): e.seconds for e in entries}
    for query in ("Query 1", "Query 2"):
        for state in ("COLD", "HOT"):
            ei = by_key.get((query, "Ei", state), float("nan"))
            ali = by_key.get((query, "ALi", state), float("nan"))
            ratio = ei / ali if ali else float("inf")
            lines.append(
                f"{query:<10} {state:<6} {ei:>12.4f} {ali:>12.4f} {ratio:>8.2f}"
            )
    return "\n".join(lines)


def render_figure3_chart(entries: list[Fig3Entry], files: int) -> str:
    """Figure 3 as an ASCII bar chart with a log time axis, mirroring the
    paper's log-scale plot."""
    import math

    seconds = [e.seconds for e in entries if e.seconds > 0]
    if not seconds:
        return "(no data)"
    lo = min(seconds)
    hi = max(seconds)
    span = max(math.log10(hi) - math.log10(lo), 1e-9)
    width = 46
    lines = [
        f"Figure 3: Querying {files} files — log-scale time "
        f"({lo:.4f}s .. {hi:.4f}s)"
    ]
    order = sorted(
        entries, key=lambda e: (e.query, e.state, e.system)
    )
    for entry in order:
        frac = (math.log10(max(entry.seconds, lo)) - math.log10(lo)) / span
        bar = "■" * max(1, int(round(frac * width)))
        lines.append(
            f"{entry.query} {entry.state:<4} {entry.system:<3} "
            f"|{bar:<{width}}| {entry.seconds:9.4f}s"
        )
    return "\n".join(lines)


def render_ingestion(report: IngestionReport) -> str:
    lines = [
        "Up-front ingestion (§4 text claims)",
        f"  Ei   load: {report.ei_load_seconds:.3f}s  "
        f"+ index build: {report.ei_index_seconds:.3f}s  "
        f"(index/load ratio {report.index_to_load_ratio:.2f}x)",
        f"  ALi  metadata load: {report.ali_load_seconds:.3f}s",
        f"  initialization speedup (Ei total / ALi): {report.speedup:,.0f}x",
        f"  storage: Ei {_human_bytes(report.ei_total_bytes)} vs "
        f"ALi {_human_bytes(report.ali_bytes)} "
        f"({report.space_ratio:,.0f}x less in the database)",
    ]
    return "\n".join(lines)


def render_sweep(entries: list[SweepEntry]) -> str:
    lines = [
        "Data-of-interest sweep (best case -> worst case)",
        f"{'fraction':>9} {'files':>6} {'seconds':>10}",
    ]
    for entry in entries:
        lines.append(
            f"{entry.fraction:>9.2f} {entry.files_of_interest:>6} "
            f"{entry.seconds:>10.4f}"
        )
    return "\n".join(lines)
