"""Tests for informativeness estimation and destiny policies."""

import pytest

from repro.core import (
    AbortAboveCost,
    CallbackPolicy,
    CostModel,
    DestinyAction,
    DestinyDecision,
    LimitFilesAboveCost,
    ProceedAlways,
    estimate_informativeness,
)
from repro.db.buffer import DiskModel


class TestCostModel:
    def test_mount_seconds_scales_with_bytes(self):
        model = CostModel()
        assert model.mount_seconds(10**8, 10**6) > model.mount_seconds(10**6, 10**6)

    def test_stage2_at_least_mount(self):
        model = CostModel()
        assert model.stage2_seconds(10**6, 10**6) >= model.mount_seconds(10**6, 10**6)

    def test_custom_disk(self):
        slow = CostModel(disk=DiskModel(seek_seconds=1.0))
        fast = CostModel(disk=DiskModel(seek_seconds=0.0001))
        assert slow.mount_seconds(1000, 10) > fast.mount_seconds(1000, 10)


class TestEstimate:
    def test_uses_file_metadata(self, ali_db, tiny_repo):
        uris = tiny_repo.uris()[:2]
        report = estimate_informativeness(
            ali_db, uris, len(tiny_repo), cached_uris=set()
        )
        assert report.files == 2
        assert report.est_tuples > 0
        assert report.est_bytes > 0
        assert report.selectivity == pytest.approx(2 / len(tiny_repo))

    def test_cached_files_reduce_bytes(self, ali_db, tiny_repo):
        uris = tiny_repo.uris()[:2]
        cold = estimate_informativeness(ali_db, uris, len(tiny_repo), set())
        warm = estimate_informativeness(
            ali_db, uris, len(tiny_repo), set(uris)
        )
        assert warm.est_bytes == 0
        assert warm.cached_files == 2
        assert warm.est_stage2_seconds < cold.est_stage2_seconds

    def test_empty_files_scores_one(self, ali_db, tiny_repo):
        report = estimate_informativeness(ali_db, [], len(tiny_repo), set())
        assert report.score == 1.0
        assert report.est_tuples == 0

    def test_whole_repository_scores_low(self, ali_db, tiny_repo):
        narrow = estimate_informativeness(
            ali_db, tiny_repo.uris()[:1], len(tiny_repo), set()
        )
        broad = estimate_informativeness(
            ali_db, tiny_repo.uris(), len(tiny_repo), set()
        )
        assert broad.score < narrow.score
        assert broad.selectivity == 1.0


class TestPolicies:
    def report(self, ali_db, tiny_repo, n):
        return estimate_informativeness(
            ali_db, tiny_repo.uris()[:n], len(tiny_repo), set()
        )

    def test_proceed_always(self, ali_db, tiny_repo):
        decision = ProceedAlways().decide(self.report(ali_db, tiny_repo, 4))
        assert decision.action is DestinyAction.PROCEED

    def test_abort_on_files(self, ali_db, tiny_repo):
        policy = AbortAboveCost(max_files=1)
        decision = policy.decide(self.report(ali_db, tiny_repo, 3))
        assert decision.action is DestinyAction.ABORT
        assert "files of interest" in decision.reason

    def test_abort_on_seconds(self, ali_db, tiny_repo):
        policy = AbortAboveCost(max_seconds=0.0)
        decision = policy.decide(self.report(ali_db, tiny_repo, 1))
        assert decision.action is DestinyAction.ABORT

    def test_abort_on_tuples(self, ali_db, tiny_repo):
        policy = AbortAboveCost(max_tuples=1)
        decision = policy.decide(self.report(ali_db, tiny_repo, 1))
        assert decision.action is DestinyAction.ABORT

    def test_abort_passes_small(self, ali_db, tiny_repo):
        policy = AbortAboveCost(max_files=10, max_tuples=10**12)
        decision = policy.decide(self.report(ali_db, tiny_repo, 1))
        assert decision.action is DestinyAction.PROCEED

    def test_limit_policy(self, ali_db, tiny_repo):
        policy = LimitFilesAboveCost(max_files=1, keep_files=1)
        decision = policy.decide(self.report(ali_db, tiny_repo, 3))
        assert decision.action is DestinyAction.LIMIT
        assert decision.max_files == 1

    def test_callback_policy(self, ali_db, tiny_repo):
        seen = []

        def decide(report):
            seen.append(report.files)
            return DestinyDecision(DestinyAction.PROCEED, reason="explorer said go")

        decision = CallbackPolicy(decide).decide(self.report(ali_db, tiny_repo, 2))
        assert seen == [2]
        assert decision.reason == "explorer said go"


class TestResultRowEstimate:
    def test_window_estimate_close_to_actual(self, ali_db, tiny_repo, executor, ei_db):
        sql = (
            "SELECT D.sample_time, D.sample_value "
            "FROM F JOIN D ON F.uri = D.uri "
            "WHERE F.station = 'ISK' AND F.channel = 'BHE' "
            "AND D.sample_time > '2010-01-10T00:00:00' "
            "AND D.sample_time < '2010-01-10T06:00:00'"
        )
        outcome = executor.execute(sql)
        estimate = outcome.breakpoint.estimate
        assert estimate.est_result_rows is not None
        actual = ei_db.execute(sql).num_rows
        # Uniform-sampling assumption holds exactly for synthetic files.
        assert abs(estimate.est_result_rows - actual) <= max(2, actual * 0.05)
        assert "rows in the time window" in estimate.summary()

    def test_no_interval_no_estimate(self, executor):
        outcome = executor.execute(
            "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri "
            "WHERE F.station = 'ISK'"
        )
        assert outcome.breakpoint.estimate.est_result_rows is None

    def test_window_rows_direct(self, ali_db, tiny_repo):
        from repro.core import estimate_informativeness
        from repro.db import parse_timestamp

        uris = [u for u in tiny_repo.uris() if "ISK" in u][:1]
        lo = parse_timestamp("2010-01-10T00:00:00")
        hi = parse_timestamp("2010-01-10T12:00:00")
        report = estimate_informativeness(
            ali_db, uris, len(tiny_repo), set(), interval=(lo, hi)
        )
        # Half the day-file's samples fall into the half-day window.
        day_total = 4320
        assert abs(report.est_result_rows - day_total / 2) < day_total * 0.05
