"""The remote-repository backend and its resilient transport.

Unit-level coverage of every layer the ``remote://`` scheme stacks up:
URI helpers, the ranged-GET span planner, the deterministic network
model, the simulated object store, the resilient transport (retries,
budgets, breakers, timeouts, hedging), the staging repository, and the
federated dispatcher. End-to-end fault grids live in
``test_remote_chaos.py``.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.governor import (
    CIRCUIT_CLOSED,
    CIRCUIT_OPEN,
    CircuitBreaker,
)
from repro.db.errors import (
    CircuitOpenError,
    FileIngestError,
    IngestError,
    RemoteObjectMissingError,
    RemoteTransportError,
)
from repro.mseed import FileRepository, RepositorySpec, generate_repository
from repro.remote import (
    FederatedRepository,
    NetworkModel,
    NetworkProfile,
    RemoteRepository,
    ResilientTransport,
    SimulatedObjectStore,
    TransportPolicy,
    coalesce_spans,
    endpoint_of,
    is_remote_uri,
    parse_remote_uri,
    remote_uri,
)

SPEC = RepositorySpec(
    stations=("ISK",),
    channels=("BHE",),
    days=1,
    sample_rate=0.02,
    samples_per_record=100,
)


@pytest.fixture(scope="module")
def objects_dir(tmp_path_factory):
    root = tmp_path_factory.mktemp("remote_objects")
    generate_repository(root, SPEC)
    return root


def _store(objects_dir, **profile_kwargs):
    return SimulatedObjectStore(
        "seis-eu", objects_dir, profile=NetworkProfile(**profile_kwargs)
    )


def _repository(tmp_path, store, **kwargs):
    return RemoteRepository(store, tmp_path / "staging", **kwargs)


class TestRemoteUris:
    def test_round_trip(self):
        uri = remote_uri("seis-eu", "2010/day1.xseed")
        assert uri == "remote://seis-eu/2010/day1.xseed"
        assert is_remote_uri(uri)
        assert parse_remote_uri(uri) == ("seis-eu", "2010/day1.xseed")
        assert endpoint_of(uri) == "seis-eu"

    def test_local_uris_have_no_endpoint(self):
        assert not is_remote_uri("2010/day1.xseed")
        assert endpoint_of("2010/day1.xseed") is None
        assert endpoint_of("/abs/path.xseed") is None

    def test_malformed_uris_rejected(self):
        with pytest.raises(ValueError):
            remote_uri("", "key")
        with pytest.raises(ValueError):
            remote_uri("host/extra", "key")
        for bad in ("remote://", "remote://host", "remote://host/", "file.x"):
            with pytest.raises(ValueError):
                parse_remote_uri(bad)

    def test_endpoint_of_never_raises(self):
        # Malformed remote URIs still group under their host-ish prefix.
        assert endpoint_of("remote://host") == "host"
        assert endpoint_of("remote://") is None


class TestCoalesceSpans:
    def test_empty_and_degenerate(self):
        assert coalesce_spans([], 10) == []
        assert coalesce_spans([(5, 5), (7, 3)], 10) == []

    def test_small_gaps_absorbed_large_gaps_kept(self):
        spans = [(0, 10), (12, 20), (100, 110)]
        assert coalesce_spans(spans, 2) == [(0, 20), (100, 110)]
        assert coalesce_spans(spans, 1) == [(0, 10), (12, 20), (100, 110)]
        assert coalesce_spans(spans, 80) == [(0, 110)]

    def test_overlaps_and_unordered_input(self):
        spans = [(50, 60), (0, 30), (20, 40)]
        assert coalesce_spans(spans, 0) == [(0, 40), (50, 60)]

    def test_contained_span_does_not_shrink_the_union(self):
        assert coalesce_spans([(0, 100), (10, 20)], 0) == [(0, 100)]


class TestNetworkModel:
    def test_same_seed_same_key_replays_exactly(self):
        profile = NetworkProfile(
            latency_seconds=0.001,
            jitter=0.5,
            loss_probability=0.3,
            heavy_tail_probability=0.2,
        )
        a = NetworkModel(profile, seed=7)
        b = NetworkModel(profile, seed=7)
        # Interleaving per-key draws differently must not change any
        # key's own sequence — that is what makes chaos runs replayable
        # under arbitrary thread schedules.
        seq_a = [a.draw("GET:x") for _ in range(5)] + [a.draw("GET:y")]
        b.draw("GET:y")
        seq_b = [b.draw("GET:x") for _ in range(5)]
        assert [d.latency_seconds for d in seq_a[:5]] == [
            d.latency_seconds for d in seq_b
        ]
        assert [d.lost for d in seq_a[:5]] == [d.lost for d in seq_b]

    def test_distinct_seeds_diverge(self):
        profile = NetworkProfile(latency_seconds=0.001, jitter=1.0)
        a = [NetworkModel(profile, seed=1).draw("k") for _ in range(1)]
        b = [NetworkModel(profile, seed=2).draw("k") for _ in range(1)]
        assert a[0].latency_seconds != b[0].latency_seconds

    def test_loss_extremes(self):
        lossy = NetworkModel(NetworkProfile(loss_probability=0.999), seed=0)
        never = NetworkModel(NetworkProfile(loss_probability=0.0), seed=0)
        assert sum(lossy.draw("k").lost for _ in range(8)) >= 7
        assert not any(never.draw("k").lost for _ in range(8))
        with pytest.raises(ValueError):
            NetworkProfile(loss_probability=1.0)  # a dead link is set_down()

    def test_transfer_seconds(self):
        model = NetworkModel(
            NetworkProfile(bandwidth_bytes_per_second=1000), seed=0
        )
        assert model.transfer_seconds(500) == pytest.approx(0.5)
        unmetered = NetworkModel(NetworkProfile(), seed=0)
        assert unmetered.transfer_seconds(10**9) == 0.0

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            NetworkProfile(latency_seconds=-1)
        with pytest.raises(ValueError):
            NetworkProfile(loss_probability=1.5)
        with pytest.raises(ValueError):
            NetworkProfile(bandwidth_bytes_per_second=0)


class TestSimulatedObjectStore:
    def test_list_head_get_mirror_the_directory(self, objects_dir):
        store = _store(objects_dir)
        keys = store.list_keys()
        assert keys == sorted(
            p.relative_to(objects_dir).as_posix()
            for p in objects_dir.rglob("*")
            if p.is_file()
        )
        key = keys[0]
        stat = store.head(key)
        raw = (objects_dir / key).read_bytes()
        assert stat.size == len(raw)
        assert store.get(key) == raw
        assert store.stats.lists == 1
        assert store.stats.heads == 1
        assert store.stats.gets == 1

    def test_ranged_get_returns_the_exact_slice(self, objects_dir):
        store = _store(objects_dir)
        key = store.list_keys()[0]
        raw = (objects_dir / key).read_bytes()
        assert store.get(key, 10, 50) == raw[10:60]
        assert store.stats.ranged_gets == 1
        # Tail reads clamp at end-of-object, like HTTP range semantics.
        assert store.get(key, len(raw) - 5, 100) == raw[-5:]

    def test_down_endpoint_refuses_every_request(self, objects_dir):
        store = _store(objects_dir)
        key = store.list_keys()[0]
        store.set_down()
        with pytest.raises(ConnectionRefusedError):
            store.get(key)
        with pytest.raises(ConnectionRefusedError):
            store.head(key)
        assert store.stats.refused == 2
        store.set_down(False)
        assert store.get(key)  # recovered

    def test_missing_object_is_not_found(self, objects_dir):
        store = _store(objects_dir)
        with pytest.raises(FileNotFoundError):
            store.head("no/such.xseed")
        with pytest.raises(FileNotFoundError):
            store.get("no/such.xseed")

    def test_modeled_loss_resets_the_connection(self, objects_dir):
        store = SimulatedObjectStore(
            "flaky",
            objects_dir,
            profile=NetworkProfile(loss_probability=0.999),
            seed=3,
        )
        with pytest.raises(ConnectionResetError):
            store.list_keys()
        assert store.stats.lost == 1


class _ScriptedStore:
    """A stub endpoint whose per-key behavior is scripted for transport
    tests: fail N times, stall until cancelled, or answer instantly."""

    def __init__(self, endpoint="stub-ep", fail_times=0, payload=b"payload"):
        self.endpoint = endpoint
        self.payload = payload
        self.fail_times = fail_times
        self.calls = 0
        self.stall_keys = set()
        self._stalled_once = set()
        self._lock = threading.Lock()

    def get(self, key, start=0, length=None, cancel=None, token=None):
        with self._lock:
            self.calls += 1
            remaining = self.fail_times
            if remaining > 0:
                self.fail_times -= 1
            stall = key in self.stall_keys and key not in self._stalled_once
            if stall:
                self._stalled_once.add(key)
        if remaining > 0:
            raise ConnectionResetError("scripted reset")
        if stall:
            # Park until the race cancels us (or give up after 2 s so a
            # broken transport cannot hang the test suite).
            if cancel is not None:
                cancel.wait(2.0)
            else:  # pragma: no cover - inline callers never stall here
                time.sleep(2.0)
            raise ConnectionResetError("stalled attempt abandoned")
        if key == "missing":
            raise FileNotFoundError(key)
        return self.payload

    def head(self, key, cancel=None, token=None):
        raise NotImplementedError

    def list_keys(self, cancel=None, token=None):
        raise NotImplementedError


class TestResilientTransport:
    def test_transient_failures_retried_to_success(self):
        store = _ScriptedStore(fail_times=2)
        transport = ResilientTransport(
            store, TransportPolicy(max_attempts=3, backoff_seconds=0.0)
        )
        assert transport.get("k") == b"payload"
        assert store.calls == 3
        assert transport.stats.retries == 2
        assert transport.stats.failures == 2
        assert transport.breaker.state_of(store.endpoint) == CIRCUIT_CLOSED

    def test_attempts_exhausted_surface_the_transport_error(self):
        store = _ScriptedStore(fail_times=100)
        transport = ResilientTransport(
            store, TransportPolicy(max_attempts=2, backoff_seconds=0.0)
        )
        with pytest.raises(RemoteTransportError) as excinfo:
            transport.get("k")
        assert excinfo.value.endpoint == "stub-ep"
        assert excinfo.value.transient
        assert store.calls == 2

    def test_missing_object_no_retry_no_breaker_trip(self):
        store = _ScriptedStore()
        transport = ResilientTransport(
            store, TransportPolicy(max_attempts=3, backoff_seconds=0.0)
        )
        with pytest.raises(RemoteObjectMissingError) as excinfo:
            transport.get("missing")
        assert not excinfo.value.transient  # not worth any retry ladder
        assert store.calls == 1
        assert transport.stats.retries == 0
        assert transport.breaker.state_of(store.endpoint) == CIRCUIT_CLOSED

    def test_breaker_opens_and_refuses_with_the_endpoint_named(self):
        store = _ScriptedStore(fail_times=10**6)
        breaker = CircuitBreaker(failure_threshold=3, cooldown_seconds=60.0)
        transport = ResilientTransport(
            store,
            TransportPolicy(max_attempts=1, backoff_seconds=0.0),
            breaker=breaker,
        )
        for _ in range(3):
            with pytest.raises(RemoteTransportError):
                transport.get("k")
        assert breaker.state_of(store.endpoint) == CIRCUIT_OPEN
        with pytest.raises(CircuitOpenError) as excinfo:
            transport.get("k")
        assert excinfo.value.endpoint == "stub-ep"
        assert transport.stats.breaker_refusals == 1
        assert store.calls == 3  # the refusal never reached the store

    def test_retry_budget_is_shared_across_requests(self):
        store = _ScriptedStore(fail_times=10**6)
        transport = ResilientTransport(
            store,
            TransportPolicy(
                max_attempts=3, backoff_seconds=0.0, retry_budget_attempts=1
            ),
            breaker=CircuitBreaker(failure_threshold=100),
        )
        with pytest.raises(RemoteTransportError):
            transport.get("a")  # spends the whole budget on its retry
        with pytest.raises(RemoteTransportError):
            transport.get("b")  # gets zero retries
        assert transport.stats.retries == 1
        assert transport.stats.retries_denied == 2  # "a"'s 2nd retry + "b"'s
        assert store.calls == 3  # 2 attempts for "a", 1 for "b"

    def test_begin_query_refills_the_budget(self):
        store = _ScriptedStore(fail_times=10**6)
        transport = ResilientTransport(
            store,
            TransportPolicy(
                max_attempts=2, backoff_seconds=0.0, retry_budget_attempts=1
            ),
            breaker=CircuitBreaker(failure_threshold=100),
        )
        with pytest.raises(RemoteTransportError):
            transport.get("a")
        assert transport.retry_budget.remaining() == 0
        transport.begin_query(None)
        assert transport.retry_budget.remaining() == 1

    def test_request_timeout_fires_and_counts(self):
        store = _ScriptedStore()
        store.stall_keys.add("slow")
        transport = ResilientTransport(
            store,
            TransportPolicy(
                request_timeout_seconds=0.05,
                max_attempts=1,
                backoff_seconds=0.0,
            ),
        )
        started = time.monotonic()
        with pytest.raises(RemoteTransportError) as excinfo:
            transport.get("slow")
        assert time.monotonic() - started < 1.0  # nowhere near the 2 s stall
        assert "timed out" in str(excinfo.value)
        assert transport.stats.timeouts == 1
        transport.close()

    def test_hedged_request_wins_past_the_latency_percentile(self):
        store = _ScriptedStore()
        store.stall_keys.add("slow")
        transport = ResilientTransport(
            store,
            TransportPolicy(
                hedge_enabled=True,
                hedge_min_samples=4,
                hedge_multiplier=1.5,
                max_attempts=1,
                backoff_seconds=0.0,
            ),
        )
        for _ in range(4):  # warm the tracker with fast requests
            transport.get("fast")
        started = time.monotonic()
        assert transport.get("slow") == b"payload"  # the hedge's answer
        assert time.monotonic() - started < 1.0
        assert transport.stats.hedges == 1
        assert transport.stats.hedge_wins == 1
        transport.close()

    def test_hedging_spends_the_retry_budget(self):
        store = _ScriptedStore()
        store.stall_keys.add("slow")
        transport = ResilientTransport(
            store,
            TransportPolicy(
                hedge_enabled=True,
                hedge_min_samples=4,
                hedge_multiplier=1.5,
                max_attempts=1,
                backoff_seconds=0.0,
                retry_budget_attempts=0,  # nothing left for backups
            ),
        )
        for _ in range(4):
            transport.get("fast")
        with pytest.raises(RemoteTransportError):
            transport.get("slow")  # primary stalls; no budget to hedge
        assert transport.stats.hedges == 0
        assert transport.stats.hedges_denied >= 1
        transport.close()

    def test_inline_policy_is_the_zero_thread_path(self):
        assert TransportPolicy().inline
        assert not TransportPolicy(request_timeout_seconds=1.0).inline
        assert not TransportPolicy(hedge_enabled=True).inline


class TestRemoteRepository:
    def test_uris_are_remote_and_owned(self, objects_dir, tmp_path):
        repo = _repository(tmp_path, _store(objects_dir))
        uris = repo.uris()
        assert uris and all(u.startswith("remote://seis-eu/") for u in uris)
        assert all(repo.owns_uri(u) for u in uris)
        assert not repo.owns_uri("2010/local.xseed")
        assert len(repo) == len(uris)

    def test_ensure_whole_stages_exact_bytes_then_reuses(
        self, objects_dir, tmp_path
    ):
        repo = _repository(tmp_path, _store(objects_dir))
        uri = repo.uris()[0]
        key = parse_remote_uri(uri)[1]
        raw = (objects_dir / key).read_bytes()
        fetched = repo.ensure_whole(uri)
        assert fetched == len(raw)
        assert repo.path_of(uri).read_bytes() == raw
        assert repo.ensure_whole(uri) == 0  # signature matched: no traffic
        assert repo.stats.staged_reuses == 1
        assert repo.stats.whole_fetches == 1
        assert repo.stats.remote_bytes == len(raw)

    def test_fetch_spans_moves_only_missing_coalesced_bytes(
        self, objects_dir, tmp_path
    ):
        repo = _repository(
            tmp_path, _store(objects_dir), coalesce_gap_bytes=8
        )
        uri = repo.uris()[0]
        key = parse_remote_uri(uri)[1]
        raw = (objects_dir / key).read_bytes()
        # Spans are (byte_offset, byte_length), like RecordSpan.
        fetched = repo.fetch_spans(uri, [(0, 64), (128, 128)])
        assert fetched == 64 + 128
        assert repo.stats.ranged_gets == 2  # 64-byte gap > coalesce gap
        staged = repo.path_of(uri)
        assert staged.stat().st_size == len(raw)  # size-exact sparse file
        data = staged.read_bytes()
        assert data[0:64] == raw[0:64]
        assert data[128:256] == raw[128:256]
        # Overlapping re-request only moves the genuinely missing bytes:
        # [64, 128) and [256, 300) of the wanted [32, 300).
        assert repo.fetch_spans(uri, [(32, 268)]) == 64 + 44
        assert repo.path_of(uri).read_bytes()[0:300] == raw[0:300]
        assert repo.fetch_spans(uri, [(0, 300)]) == 0  # fully covered now
        assert repo.stats.staged_reuses == 1

    def test_adjacent_spans_coalesce_into_one_get(self, objects_dir, tmp_path):
        repo = _repository(
            tmp_path, _store(objects_dir), coalesce_gap_bytes=64
        )
        uri = repo.uris()[0]
        assert repo.fetch_spans(uri, [(0, 32), (48, 48)]) == 96
        assert repo.stats.ranged_gets == 1  # 16-byte gap read through

    def test_remote_rewrite_invalidates_staged_state(
        self, objects_dir, tmp_path
    ):
        work = tmp_path / "mutable_objects"
        work.mkdir()
        (work / "a.xseed").write_bytes(b"A" * 256)
        repo = _repository(
            tmp_path, SimulatedObjectStore("seis-eu", work)
        )
        uri = repo.uris()[0]
        assert repo.ensure_whole(uri) == 256
        (work / "a.xseed").write_bytes(b"B" * 300)
        assert repo.ensure_whole(uri) == 300  # stale staging dropped
        assert repo.path_of(uri).read_bytes() == b"B" * 300
        # Ranged staging tracks the rewrite too: staged ranges for the
        # old version must not satisfy reads against the new one.
        (work / "a.xseed").write_bytes(b"C" * 300)
        assert repo.fetch_spans(uri, [(0, 10)]) == 10
        assert repo.stats.invalidations == 1
        assert repo.path_of(uri).read_bytes()[0:10] == b"C" * 10

    def test_signature_of_reflects_the_remote_object(
        self, objects_dir, tmp_path
    ):
        repo = _repository(tmp_path, _store(objects_dir))
        uri = repo.uris()[0]
        key = parse_remote_uri(uri)[1]
        st = (objects_dir / key).stat()
        assert repo.signature_of(uri) == (st.st_mtime_ns, st.st_size)
        assert repo.size_of(uri) == st.st_size

    def test_listing_fallback_when_the_endpoint_drops(
        self, objects_dir, tmp_path
    ):
        store = _store(objects_dir)
        repo = _repository(tmp_path, store)
        live = repo.uris()
        store.set_down()
        assert repo.uris() == live  # stale-but-available beats an error
        assert repo.stats.listing_fallbacks >= 1

    def test_cold_listing_with_endpoint_down_still_fails(
        self, objects_dir, tmp_path
    ):
        store = _store(objects_dir)
        store.set_down()
        repo = _repository(tmp_path, store)
        with pytest.raises(FileIngestError):
            repo.uris()  # no last-known listing to fall back on


class TestFederatedRepository:
    @pytest.fixture()
    def members(self, objects_dir, tmp_path):
        local_root = tmp_path / "local"
        local_root.mkdir()
        (local_root / "station.tscsv").write_text(
            "sample_time,sample_value\n2010-01-10T00:00:00.000,1.0\n"
        )
        local = FileRepository(local_root, suffix=(".tscsv",))
        remote = _repository(tmp_path, _store(objects_dir))
        return local, remote

    def test_uris_union_in_member_order(self, members):
        local, remote = members
        fed = FederatedRepository([local, remote])
        assert fed.uris() == local.uris() + remote.uris()
        assert len(fed) == len(local) + len(remote)

    def test_dispatch_by_ownership(self, members, objects_dir):
        local, remote = members
        fed = FederatedRepository([local, remote])
        local_uri = local.uris()[0]
        remote_uri_ = remote.uris()[0]
        assert fed.path_of(local_uri) == local.path_of(local_uri)
        assert fed.path_of(remote_uri_) == remote.path_of(remote_uri_)
        assert fed.signature_of(remote_uri_) == remote.signature_of(
            remote_uri_
        )
        with pytest.raises(IngestError):
            fed.path_of("remote://unknown-endpoint/x.xseed")

    def test_total_bytes_sums_members(self, members):
        local, remote = members
        fed = FederatedRepository([local, remote])
        assert fed.total_bytes() == local.total_bytes() + remote.total_bytes()

    def test_suffixes_are_the_ordered_union(self, members):
        local, remote = members
        fed = FederatedRepository([local, remote])
        assert fed.suffixes[0] == ".tscsv"
        assert set(remote.suffixes) <= set(fed.suffixes)

    def test_empty_federation_rejected(self):
        with pytest.raises(IngestError):
            FederatedRepository([])
