"""Tests for the automated event hunter."""

import pytest

from repro.core import CachePolicy, IngestionCache, TwoStageExecutor
from repro.db import Database
from repro.explore import EventHunter
from repro.ingest import RepositoryBinding, lazy_ingest_metadata
from repro.mseed import (
    FileRepository,
    RepositorySpec,
    WaveformSpec,
    generate_repository,
)

# Strong, frequent events so the detector always finds something.
SPEC = RepositorySpec(
    stations=("ISK", "ANK"),
    channels=("BHE",),
    days=1,
    sample_rate=0.2,
    samples_per_record=4320,
    waveform=WaveformSpec(events_per_hour=1.2, event_amplitude=30_000.0),
)


@pytest.fixture(scope="module")
def repo(tmp_path_factory):
    root = tmp_path_factory.mktemp("hunt_repo")
    generate_repository(root, SPEC)
    return FileRepository(root)


@pytest.fixture()
def hunter(repo):
    db = Database()
    lazy_ingest_metadata(db, repo)
    executor = TwoStageExecutor(
        db,
        RepositoryBinding(repo),
        cache=IngestionCache(CachePolicy.UNBOUNDED),
    )
    return EventHunter(
        executor,
        stations=list(SPEC.stations),
        channels=list(SPEC.channels),
        start_day=SPEC.start_day,
        days=SPEC.days,
        on_threshold=4.0,
    )


class TestSurvey:
    def test_covers_all_targets(self, hunter):
        survey = hunter.survey()
        assert len(survey) == 2  # 2 stations × 1 channel × 1 day
        assert {e.station for e in survey} == {"ISK", "ANK"}

    def test_ranked_by_energy(self, hunter):
        survey = hunter.survey()
        energies = [e.energy for e in survey]
        assert energies == sorted(energies, reverse=True)
        assert energies[0] > 0


class TestHunt:
    def test_finds_events(self, hunter):
        report = hunter.hunt()
        assert report.events, "the synthetic repository has strong events"
        for event in report.events:
            assert event.peak_ratio >= 4.0
            assert event.zoom_rows > 0
            assert event.station in SPEC.stations

    def test_cost_accounting(self, hunter):
        report = hunter.hunt()
        assert report.queries_run == len(hunter.session.history)
        # With the unbounded cache, each interesting file mounts once even
        # though the hunt queries it several times.
        assert report.files_mounted <= len(SPEC.stations)

    def test_summary_text(self, hunter):
        report = hunter.hunt()
        text = report.summary()
        assert "confirmed event(s)" in text
        assert "STA/LTA peak" in text

    def test_works_over_eager_database_too(self, repo):
        from repro.ingest import eager_ingest

        db = Database()
        eager_ingest(db, repo)
        hunter = EventHunter(
            db,
            stations=list(SPEC.stations),
            channels=list(SPEC.channels),
            start_day=SPEC.start_day,
            days=SPEC.days,
            on_threshold=4.0,
        )
        report = hunter.hunt()
        assert report.events
        assert report.files_mounted == 0  # everything was pre-loaded
