"""Tests for waveform visualization helpers."""

import numpy as np
import pytest

from repro.explore import downsample, sparkline, waveform_panel


class TestDownsample:
    def test_short_series_passthrough(self):
        values = np.array([1.0, 2.0, 3.0])
        assert list(downsample(values, 10)) == [1.0, 2.0, 3.0]

    def test_bucket_count(self):
        out = downsample(np.arange(1000, dtype=float), 50)
        assert len(out) == 50

    def test_keeps_transients(self):
        """The per-bucket extreme keeps a single spike visible."""
        values = np.zeros(1000)
        values[500] = 99.0
        out = downsample(values, 20)
        assert out.max() == 99.0

    def test_keeps_negative_extremes(self):
        values = np.zeros(1000)
        values[123] = -50.0
        out = downsample(values, 10)
        assert out.min() == -50.0

    def test_empty(self):
        assert len(downsample(np.empty(0), 5)) == 0

    def test_invalid_buckets(self):
        with pytest.raises(ValueError):
            downsample(np.ones(5), 0)


class TestSparkline:
    def test_width(self):
        line = sparkline(np.sin(np.linspace(0, 10, 1000)), width=40)
        assert len(line) == 40

    def test_constant_signal(self):
        line = sparkline(np.ones(100), width=10)
        assert len(set(line)) == 1

    def test_extremes_use_extreme_blocks(self):
        line = sparkline([0.0, 0.0, 10.0, 0.0], width=4)
        assert "█" in line

    def test_empty(self):
        assert sparkline([], width=10) == ""


class TestWaveformPanel:
    def test_panel_contents(self):
        times = np.arange(5) * 1_000_000
        values = np.array([0.0, 1.0, -2.0, 3.0, 0.5])
        panel = waveform_panel(times, values, width=5, label="ISK/BHE")
        assert "ISK/BHE" in panel
        assert "5 samples" in panel
        assert "1970-01-01T00:00:00" in panel
        assert "-2.0" in panel and "3.0" in panel

    def test_empty_panel(self):
        assert "no samples" in waveform_panel([], [], label="x")
