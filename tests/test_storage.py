"""Tests for on-disk persistence of databases."""

import pytest

from repro.db import ColumnDef, Database, DataType, TableKind, TableSchema
from repro.db.errors import StorageError
from repro.db.storage import database_disk_bytes, load_catalog, save_catalog


@pytest.fixture()
def db():
    db = Database()
    db.create_table(
        TableSchema(
            "t",
            [
                ColumnDef("k", DataType.INT64),
                ColumnDef("s", DataType.STRING),
                ColumnDef("ts", DataType.TIMESTAMP),
            ],
            kind=TableKind.ACTUAL,
            primary_key=("k",),
        )
    )
    db.insert_rows("t", [(1, "x", "2010-01-01"), (2, "y", "2010-01-02")])
    db.build_key_indexes("t")
    return db


class TestRoundtrip:
    def test_data_survives(self, db, tmp_path):
        save_catalog(db.catalog, tmp_path)
        loaded = load_catalog(tmp_path)
        assert loaded.table("t").batch.rows() == db.catalog.table("t").batch.rows()

    def test_schema_survives(self, db, tmp_path):
        save_catalog(db.catalog, tmp_path)
        loaded = load_catalog(tmp_path)
        schema = loaded.table("t").schema
        assert schema.kind is TableKind.ACTUAL
        assert schema.primary_key == ("k",)

    def test_indexes_rebuilt(self, db, tmp_path):
        save_catalog(db.catalog, tmp_path)
        loaded = load_catalog(tmp_path)
        index = loaded.index_for("t", ("k",))
        assert index is not None
        assert list(index.lookup(2)) == [1]

    def test_queries_after_reload(self, db, tmp_path):
        save_catalog(db.catalog, tmp_path)
        reloaded = Database()
        reloaded.catalog = load_catalog(tmp_path)
        rows = reloaded.execute("SELECT s FROM t ORDER BY k").rows()
        assert rows == [("x",), ("y",)]

    def test_empty_table_roundtrip(self, tmp_path):
        db = Database()
        db.create_table(TableSchema("e", [ColumnDef("v", DataType.FLOAT64)]))
        save_catalog(db.catalog, tmp_path)
        loaded = load_catalog(tmp_path)
        assert loaded.table("e").num_rows == 0


class TestAccountingAndErrors:
    def test_save_returns_bytes(self, db, tmp_path):
        written = save_catalog(db.catalog, tmp_path)
        assert written > 0
        assert database_disk_bytes(tmp_path) >= written

    def test_missing_catalog_raises(self, tmp_path):
        with pytest.raises(StorageError):
            load_catalog(tmp_path / "nowhere")

    def test_missing_column_file_raises(self, db, tmp_path):
        save_catalog(db.catalog, tmp_path)
        (tmp_path / "t.k.bin").unlink()
        with pytest.raises(StorageError):
            load_catalog(tmp_path)

    def test_missing_dictionary_raises(self, db, tmp_path):
        save_catalog(db.catalog, tmp_path)
        (tmp_path / "t.s.dict.json").unlink()
        with pytest.raises(StorageError):
            load_catalog(tmp_path)


class TestDatabaseSaveOpen:
    def test_save_open_roundtrip(self, db, tmp_path):
        """The Database-level convenience wrappers around the storage layer."""
        from repro.db import Database

        target = tmp_path / "dbdir"
        source = Database()
        source.catalog = db.catalog
        written = source.save(str(target))
        assert written > 0
        reopened = Database.open(str(target))
        assert reopened.execute("SELECT s FROM t ORDER BY k").rows() == [
            ("x",), ("y",),
        ]

    def test_open_starts_cold(self, db, tmp_path):
        from repro.db import Database, DiskModel

        target = tmp_path / "dbdir"
        source = Database()
        source.catalog = db.catalog
        source.save(str(target))
        reopened = Database.open(str(target), DiskModel(seek_seconds=0.01))
        result = reopened.execute("SELECT COUNT(*) FROM t")
        assert result.io.objects_read > 0
