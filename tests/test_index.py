"""Tests for the sorted key index."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.db import Column, DataType, HashIndex


def build(columns, names=None):
    names = names or [f"c{i}" for i in range(len(columns))]
    return HashIndex.build("t", names, columns)


class TestSingleColumn:
    def test_int_lookup(self):
        col = Column.from_pylist(DataType.INT64, [5, 3, 5, 7])
        index = build([col])
        assert sorted(index.lookup(5)) == [0, 2]
        assert list(index.lookup(3)) == [1]
        assert len(index.lookup(99)) == 0

    def test_string_lookup(self):
        col = Column.from_pylist(DataType.STRING, ["x", "y", "x"])
        index = build([col])
        assert sorted(index.lookup("x")) == [0, 2]
        assert len(index.lookup("absent")) == 0

    def test_float_lookup(self):
        col = Column.from_pylist(DataType.FLOAT64, [1.5, 2.5])
        index = build([col])
        assert list(index.lookup(2.5)) == [1]

    def test_unique_flag(self):
        assert build([Column.from_pylist(DataType.INT64, [1, 2, 3])]).unique
        assert not build([Column.from_pylist(DataType.INT64, [1, 1])]).unique

    def test_len_counts_distinct_keys(self):
        index = build([Column.from_pylist(DataType.INT64, [1, 1, 2, 3, 3])])
        assert len(index) == 3

    def test_empty_column(self):
        index = build([Column.from_pylist(DataType.INT64, [])])
        assert len(index.lookup(1)) == 0
        assert len(index) == 0

    def test_numpy_scalar_probe(self):
        col = Column.from_pylist(DataType.INT64, [10, 20])
        index = build([col])
        assert list(index.lookup(np.int64(20))) == [1]

    def test_wrong_type_probe_misses(self):
        col = Column.from_pylist(DataType.STRING, ["x"])
        index = build([col])
        assert len(index.lookup(42)) == 0


class TestCompositeKeys:
    def test_tuple_lookup(self):
        uri = Column.from_pylist(DataType.STRING, ["a", "a", "b", "b"])
        rid = Column.from_pylist(DataType.INT64, [0, 1, 0, 0])
        index = build([uri, rid], ["uri", "record_id"])
        assert list(index.lookup(("a", 1))) == [1]
        assert sorted(index.lookup(("b", 0))) == [2, 3]
        assert len(index.lookup(("a", 9))) == 0

    def test_arity_mismatch_misses(self):
        uri = Column.from_pylist(DataType.STRING, ["a"])
        rid = Column.from_pylist(DataType.INT64, [0])
        index = build([uri, rid])
        assert len(index.lookup("a")) == 0

    def test_lookup_many(self):
        k = Column.from_pylist(DataType.INT64, [1, 2, 2, 3])
        index = build([k])
        probe_idx, rowids = index.lookup_many([2, 9, 1])
        pairs = sorted(zip(probe_idx.tolist(), rowids.tolist()))
        assert pairs == [(0, 1), (0, 2), (2, 0)]

    def test_lookup_many_no_matches(self):
        k = Column.from_pylist(DataType.INT64, [1])
        index = build([k])
        probe_idx, rowids = index.lookup_many([5, 6])
        assert len(probe_idx) == 0 and len(rowids) == 0


class TestAccounting:
    def test_nbytes_scales_with_rows(self):
        small = build([Column.from_pylist(DataType.INT64, list(range(10)))])
        large = build([Column.from_pylist(DataType.INT64, list(range(1000)))])
        assert large.nbytes() > small.nbytes() * 50

    def test_requires_key_columns(self):
        with pytest.raises(ValueError):
            HashIndex.build("t", [], [])


@settings(deadline=None, max_examples=30)
@given(
    values=st.lists(st.integers(-5, 5), min_size=1, max_size=60),
    probes=st.lists(st.integers(-7, 7), min_size=1, max_size=10),
)
def test_lookup_matches_linear_scan(values, probes):
    col = Column.from_pylist(DataType.INT64, values)
    index = build([col])
    for probe in probes:
        expected = [i for i, v in enumerate(values) if v == probe]
        assert sorted(index.lookup(probe)) == expected


@settings(deadline=None, max_examples=30)
@given(
    rows=st.lists(
        st.tuples(st.sampled_from(["a", "b", "c"]), st.integers(0, 3)),
        min_size=1,
        max_size=60,
    )
)
def test_composite_lookup_matches_linear_scan(rows):
    uri = Column.from_pylist(DataType.STRING, [u for u, _ in rows])
    rid = Column.from_pylist(DataType.INT64, [r for _, r in rows])
    index = build([uri, rid], ["uri", "rid"])
    for probe in {("a", 0), ("b", 1), ("c", 3), ("a", 2)}:
        expected = [i for i, row in enumerate(rows) if row == probe]
        assert sorted(index.lookup(probe)) == expected
