"""Tests for plan decomposition into Qf and Qs."""

import pytest

from repro.core import decompose
from repro.db.plan.logical import Aggregate, ResultScan, Scan, UnionAll


def prepared(db, sql):
    plan = db.optimize(db.bind_sql(sql), metadata_first=True)
    return decompose(plan, db.catalog.is_metadata_table)


class TestQuery1Decomposition:
    def test_qf_contains_only_metadata_scans(self, ali_db, query1):
        decomposition = prepared(ali_db, query1)
        assert decomposition.qf is not None
        scans = [n for n in decomposition.qf.walk() if isinstance(n, Scan)]
        assert {s.table_name for s in scans} == {"F", "R"}

    def test_qs_references_result_scan(self, ali_db, query1):
        decomposition = prepared(ali_db, query1)
        assert decomposition.qs is not None
        result_scans = [
            n for n in decomposition.qs.walk() if isinstance(n, ResultScan)
        ]
        assert len(result_scans) == 1
        assert result_scans[0].tag == decomposition.result_tag

    def test_qs_keeps_actual_scan(self, ali_db, query1):
        decomposition = prepared(ali_db, query1)
        scans = [n for n in decomposition.qs.walk() if isinstance(n, Scan)]
        assert {s.table_name for s in scans} == {"D"}

    def test_actual_scan_linked_to_qf_uri(self, ali_db, query1):
        decomposition = prepared(ali_db, query1)
        (info,) = decomposition.actual_scans
        assert info.table_name == "D"
        assert info.uri_key == "d.uri"
        assert info.link_key in decomposition.qf.output_keys()
        assert info.link_key.endswith(".uri")

    def test_not_metadata_only(self, ali_db, query1):
        assert not prepared(ali_db, query1).metadata_only

    def test_explain_marks_qf(self, ali_db, query1):
        decomposition = prepared(ali_db, query1)
        assert "[Qf]" in decomposition.explain()


class TestMetadataOnlyQueries:
    def test_whole_plan_is_stage1(self, ali_db):
        decomposition = prepared(
            ali_db, "SELECT station, COUNT(*) FROM F GROUP BY station"
        )
        assert decomposition.metadata_only
        assert decomposition.qf is decomposition.plan
        assert decomposition.qs is None

    def test_metadata_join_still_single_stage(self, ali_db):
        decomposition = prepared(
            ali_db,
            "SELECT F.station, R.nsamples FROM F JOIN R ON F.uri = R.uri",
        )
        assert decomposition.metadata_only


class TestNoMetadataQueries:
    def test_pure_actual_query_has_no_qf(self, ali_db):
        decomposition = prepared(ali_db, "SELECT AVG(sample_value) FROM D")
        assert decomposition.qf is None
        assert not decomposition.metadata_only
        (info,) = decomposition.actual_scans
        assert info.link_key is None


class TestAggregatesAboveMetadata:
    def test_aggregate_over_metadata_branch(self, ali_db):
        """An aggregate whose input is all-metadata belongs to Qf."""
        decomposition = prepared(
            ali_db, "SELECT MAX(nsamples) FROM R"
        )
        assert decomposition.metadata_only
        assert any(
            isinstance(n, Aggregate) for n in decomposition.qf.walk()
        )
