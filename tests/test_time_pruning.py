"""Tests for metadata time-span file pruning (the §5 metadata-exploitation
extension: a file whose [start_time, end_time] is disjoint from the query's
sample-time interval cannot contribute rows and is never mounted)."""

import pytest

from repro.core import TwoStageExecutor
from repro.ingest import RepositoryBinding


@pytest.fixture()
def pruning_executor(ali_db, tiny_repo):
    """Pruning is opt-in (the paper's ALi does not do it)."""
    return TwoStageExecutor(
        ali_db, RepositoryBinding(tiny_repo, prune_by_time=True)
    )


def narrow_window_sql():
    """Only D.sample_time constrains the query — without pruning, every
    file would be of interest (no metadata predicate at all)."""
    return (
        "SELECT COUNT(*) FROM D "
        "WHERE sample_time > '2010-01-10T10:00:00' "
        "AND sample_time < '2010-01-10T11:00:00'"
    )


class TestPruning:
    def test_files_pruned_to_overlapping_day(self, pruning_executor, tiny_repo):
        outcome = pruning_executor.execute(narrow_window_sql())
        # Only day-1 files (4 of 8) overlap the window.
        assert outcome.breakpoint.n_files == 4
        assert outcome.breakpoint.pruned_by_time == 4
        assert outcome.result.stats.files_mounted == 4

    def test_answer_matches_eager(self, pruning_executor, ei_db):
        sql = narrow_window_sql()
        assert pruning_executor.execute(sql).rows == ei_db.execute(sql).rows()

    def test_disjoint_window_mounts_nothing(self, pruning_executor):
        sql = (
            "SELECT COUNT(*) FROM D "
            "WHERE sample_time > '2031-01-01T00:00:00' "
            "AND sample_time < '2031-01-02T00:00:00'"
        )
        outcome = pruning_executor.execute(sql)
        assert outcome.breakpoint.n_files == 0
        assert outcome.result.stats.files_mounted == 0
        assert outcome.rows == [(0,)]

    def test_combines_with_metadata_predicates(self, pruning_executor):
        sql = (
            "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri "
            "WHERE F.station = 'ISK' "
            "AND D.sample_time > '2010-01-11T00:00:00' "
            "AND D.sample_time < '2010-01-11T01:00:00'"
        )
        outcome = pruning_executor.execute(sql)
        # station narrows to 4 files; the time window to day 2's two.
        assert outcome.breakpoint.n_files == 2
        assert outcome.breakpoint.pruned_by_time == 2

    def test_summary_mentions_pruning(self, pruning_executor):
        outcome = pruning_executor.execute(narrow_window_sql())
        assert "pruned via metadata time spans" in outcome.breakpoint.summary()

    def test_unbounded_interval_prunes_nothing(self, pruning_executor, tiny_repo):
        outcome = pruning_executor.execute(
            "SELECT COUNT(*) FROM D WHERE sample_value > 1e18"
        )
        assert outcome.breakpoint.pruned_by_time == 0
        assert outcome.breakpoint.n_files == len(tiny_repo)


class TestDefaultOff:
    def test_default_matches_paper_behaviour(self, executor, tiny_repo):
        """Without opting in, every candidate file stays of interest — the
        paper's ALi."""
        outcome = executor.execute(narrow_window_sql())
        assert outcome.breakpoint.pruned_by_time == 0
        assert outcome.breakpoint.n_files == len(tiny_repo)

    def test_answers_identical_with_and_without(self, executor, pruning_executor):
        sql = narrow_window_sql()
        assert (
            pruning_executor.execute(sql).rows == executor.execute(sql).rows
        )
