"""The whole-program concurrency analyzer: every rule family fires on a
seeded fixture, every sanctioned convention silences it, and the real tree
is clean.

Fixtures are written to ``tmp_path`` and analyzed whole — the analyzer's
value is cross-method and cross-class reasoning, so most fixtures need two
methods or two classes to trigger anything.
"""

from __future__ import annotations

import sys
import textwrap
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))

from tools.lint.concurrency import analyze, lock_graph  # noqa: E402


def _analyze_source(tmp_path: Path, source: str) -> list:
    target = tmp_path / "fixture.py"
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return analyze([str(tmp_path)])


def _rules(violations: list) -> set[str]:
    return {v.rule for v in violations}


# -- lock-order inversions -----------------------------------------------------


def test_same_class_inversion_detected(tmp_path):
    violations = _analyze_source(
        tmp_path,
        """
        import threading

        class Service:
            def __init__(self):
                self._a = threading.Lock()
                self._b = threading.Lock()

            def forward(self):
                with self._a:
                    with self._b:
                        pass

            def backward(self):
                with self._b:
                    with self._a:
                        pass
        """,
    )
    assert _rules(violations) == {"lock-order-inversion"}
    assert len(violations) == 1  # one cycle, reported once
    assert "cycle" in violations[0].message
    assert "Service._a" in violations[0].message
    assert "Service._b" in violations[0].message


def test_consistent_nesting_is_clean(tmp_path):
    violations = _analyze_source(
        tmp_path,
        """
        import threading

        class Service:
            def __init__(self):
                self._a = threading.Lock()
                self._b = threading.Lock()

            def forward(self):
                with self._a:
                    with self._b:
                        pass

            def also_forward(self):
                with self._a:
                    with self._b:
                        pass
        """,
    )
    assert violations == []


def test_cross_class_inversion_via_call_edges(tmp_path):
    """The tentpole capability: neither class nests two ``with`` blocks —
    the cycle only exists across the call edges Coordinator -> Worker and
    Worker -> Coordinator."""
    violations = _analyze_source(
        tmp_path,
        """
        import threading

        class Coordinator:
            def __init__(self):
                self._lock = threading.Lock()
                self._worker = Worker(self)

            def kick(self):
                with self._lock:
                    self._worker.poke()

            def touch(self):
                with self._lock:
                    pass

        class Worker:
            def __init__(self, owner: Coordinator):
                self._lock = threading.Lock()
                self._owner = owner

            def poke(self):
                with self._lock:
                    pass

            def reverse(self):
                with self._lock:
                    self._owner.touch()
        """,
    )
    assert _rules(violations) == {"lock-order-inversion"}
    assert any(
        "Coordinator._lock" in v.message and "Worker._lock" in v.message
        for v in violations
    )
    # The same fixture's acquisition graph is exported for docs/debugging.
    graph = lock_graph([str(tmp_path)])
    assert "Worker._lock" in graph.get("Coordinator._lock", set())
    assert "Coordinator._lock" in graph.get("Worker._lock", set())


def test_self_deadlock_through_call_chain(tmp_path):
    violations = _analyze_source(
        tmp_path,
        """
        import threading

        class Boxed:
            def __init__(self):
                self._lock = threading.Lock()

            def outer(self):
                with self._lock:
                    self.helper()

            def helper(self):
                with self._lock:
                    pass
        """,
    )
    assert _rules(violations) == {"lock-order-inversion"}
    assert "self-deadlock" in violations[0].message


def test_rlock_reacquire_is_legal(tmp_path):
    violations = _analyze_source(
        tmp_path,
        """
        import threading

        class Boxed:
            def __init__(self):
                self._lock = threading.RLock()

            def outer(self):
                with self._lock:
                    self.helper()

            def helper(self):
                with self._lock:
                    pass
        """,
    )
    assert violations == []


def test_sync_factory_locks_are_resolved(tmp_path):
    # The repro._sync seam constructs every production lock; the analyzer
    # must see through the factory exactly like a threading ctor.
    violations = _analyze_source(
        tmp_path,
        """
        from repro import _sync

        class Service:
            def __init__(self):
                self._a = _sync.create_lock("Service._a")
                self._b = _sync.create_lock("Service._b")

            def forward(self):
                with self._a:
                    with self._b:
                        pass

            def backward(self):
                with self._b:
                    with self._a:
                        pass
        """,
    )
    assert _rules(violations) == {"lock-order-inversion"}


# -- condition discipline ------------------------------------------------------


def test_wait_outside_while_flagged(tmp_path):
    violations = _analyze_source(
        tmp_path,
        """
        import threading

        class Parker:
            def __init__(self):
                self._lock = threading.Lock()
                self._cond = threading.Condition(self._lock)

            def park(self):
                with self._cond:
                    if True:
                        self._cond.wait()
        """,
    )
    assert _rules(violations) == {"condition-wait-outside-loop"}


def test_wait_inside_while_is_clean(tmp_path):
    violations = _analyze_source(
        tmp_path,
        """
        import threading

        class Parker:
            def __init__(self):
                self._lock = threading.Lock()
                self._cond = threading.Condition(self._lock)
                self._ready = False  # guarded-by: _lock

            def set_ready(self):
                with self._cond:
                    self._ready = True
                    self._cond.notify_all()

            def park(self):
                with self._cond:
                    while not self._ready:
                        self._cond.wait()
        """,
    )
    # Also exercises condition-over-lock aliasing: `with self._cond:`
    # satisfies the `# guarded-by: _lock` declaration, and waiting on the
    # condition built over the held lock is not blocking-under-lock.
    assert violations == []


def test_wait_allow_comment_suppresses(tmp_path):
    violations = _analyze_source(
        tmp_path,
        """
        import threading

        class Parker:
            def __init__(self):
                self._lock = threading.Lock()
                self._cond = threading.Condition(self._lock)

            def park_once(self):
                with self._cond:
                    self._cond.wait(0.1)  # lint: allow-wait-outside-loop
        """,
    )
    assert violations == []


# -- guarded-by discipline -----------------------------------------------------


def test_unguarded_field_requires_annotation(tmp_path):
    violations = _analyze_source(
        tmp_path,
        """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self.count = 0

            def bump(self):
                with self._lock:
                    self.count = self.count + 1
        """,
    )
    assert _rules(violations) == {"unguarded-field"}
    assert "Counter.count" in violations[0].message


def test_guarded_by_annotation_satisfies(tmp_path):
    violations = _analyze_source(
        tmp_path,
        """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self.count = 0  # guarded-by: _lock

            def bump(self):
                with self._lock:
                    self.count = self.count + 1
        """,
    )
    assert violations == []


def test_unguarded_ok_declaration_exempts_field(tmp_path):
    violations = _analyze_source(
        tmp_path,
        """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                # unguarded-ok: monotonic flag, torn reads are benign
                self.dirty = False

            def bump(self):
                with self._lock:
                    self.dirty = True

            def peek(self):
                return self.dirty
        """,
    )
    # The declaration-site annotation may live in the comment block directly
    # above the assignment (reasons rarely fit on the line).
    assert violations == []


def test_guard_violation_on_unlocked_access(tmp_path):
    violations = _analyze_source(
        tmp_path,
        """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self.count = 0  # guarded-by: _lock

            def bump(self):
                with self._lock:
                    self.count = self.count + 1

            def peek(self):
                return self.count
        """,
    )
    assert _rules(violations) == {"guard-violation"}
    assert "peek" in violations[0].message


def test_site_level_unguarded_ok_suppresses(tmp_path):
    violations = _analyze_source(
        tmp_path,
        """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self.count = 0  # guarded-by: _lock

            def bump(self):
                with self._lock:
                    self.count = self.count + 1

            def peek(self):
                return self.count  # unguarded-ok: monitoring estimate only
        """,
    )
    assert violations == []


def test_locked_suffix_methods_assume_primary_lock(tmp_path):
    violations = _analyze_source(
        tmp_path,
        """
        import threading

        class Store:
            def __init__(self):
                self._lock = threading.Lock()
                self._items = {}  # guarded-by: _lock

            def put(self, key, value):
                with self._lock:
                    self._items[key] = value
                    self._evict_locked()

            def _evict_locked(self):
                self._items.clear()
        """,
    )
    # _evict_locked mutates the guarded dict (clear() is a mutator) with no
    # lexical `with` — the `_locked` suffix convention carries the guard.
    assert violations == []


def test_container_mutators_count_as_writes(tmp_path):
    violations = _analyze_source(
        tmp_path,
        """
        import threading

        class Store:
            def __init__(self):
                self._lock = threading.Lock()
                self._items = []

            def put(self, value):
                with self._lock:
                    self._items.append(value)
        """,
    )
    assert _rules(violations) == {"unguarded-field"}


# -- blocking reachable under a lock -------------------------------------------


def test_direct_blocking_under_lock(tmp_path):
    violations = _analyze_source(
        tmp_path,
        """
        import threading
        import time

        class Sleepy:
            def __init__(self):
                self._lock = threading.Lock()

            def nap(self):
                with self._lock:
                    time.sleep(0.1)
        """,
    )
    assert _rules(violations) == {"blocking-under-lock"}


def test_blocking_reachable_through_call_graph(tmp_path):
    """The capability that supersedes the lexical blocking-call-in-lock
    rule: the sleep is one call away from the critical section."""
    violations = _analyze_source(
        tmp_path,
        """
        import threading
        import time

        class Sleepy:
            def __init__(self):
                self._lock = threading.Lock()

            def nap(self):
                with self._lock:
                    self.pause()

            def pause(self):
                time.sleep(0.1)
        """,
    )
    assert _rules(violations) == {"blocking-under-lock"}
    assert "call chain" in violations[0].message
    assert "pause" in violations[0].message


def test_blocking_outside_lock_is_clean(tmp_path):
    violations = _analyze_source(
        tmp_path,
        """
        import threading
        import time

        class Sleepy:
            def __init__(self):
                self._lock = threading.Lock()

            def nap(self):
                with self._lock:
                    pass
                time.sleep(0.1)

            def pause(self):
                time.sleep(0.1)
        """,
    )
    assert violations == []


def test_blocking_allow_comment_on_call_site(tmp_path):
    violations = _analyze_source(
        tmp_path,
        """
        import threading
        import time

        class Sleepy:
            def __init__(self):
                self._lock = threading.Lock()

            def nap(self):
                with self._lock:
                    self.pause()  # lint: allow-blocking-under-lock

            def pause(self):
                time.sleep(0.1)
        """,
    )
    assert violations == []


# -- the real tree --------------------------------------------------------------


def test_src_tree_has_zero_findings():
    violations = analyze([str(REPO_ROOT / "src")])
    assert violations == [], "\n".join(v.render() for v in violations)


def test_src_lock_graph_is_acyclic():
    # Today the graph is empty — no code path in the tree acquires one
    # class-level lock while holding another, the strongest possible
    # ordering discipline. If nesting is ever introduced, this keeps the
    # hierarchy a DAG (Kahn's algorithm).
    graph = lock_graph([str(REPO_ROOT / "src")])
    nodes = set(graph) | {d for ds in graph.values() for d in ds}
    indegree = {n: 0 for n in nodes}
    for dsts in graph.values():
        for d in dsts:
            indegree[d] += 1
    frontier = [n for n, deg in indegree.items() if deg == 0]
    seen = 0
    while frontier:
        node = frontier.pop()
        seen += 1
        for d in graph.get(node, ()):
            indegree[d] -= 1
            if indegree[d] == 0:
                frontier.append(d)
    assert seen == len(nodes)
