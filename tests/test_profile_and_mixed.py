"""Tests for the operator profiler, the Figure-3 chart renderer, and
mixed-format repositories."""

import numpy as np
import pytest

from repro.core import TwoStageExecutor
from repro.db import ColumnDef, Database, DataType, TableSchema
from repro.harness.experiments import Fig3Entry
from repro.harness.reporting import render_figure3_chart
from repro.ingest import RepositoryBinding, lazy_ingest_metadata, write_csv_timeseries
from repro.mseed import FileRepository, RepositorySpec, generate_repository


class TestProfiler:
    @pytest.fixture()
    def db(self):
        db = Database()
        db.create_table(
            TableSchema("t", [ColumnDef("k", DataType.INT64),
                              ColumnDef("v", DataType.FLOAT64)])
        )
        db.insert_rows("t", [(i, float(i)) for i in range(100)])
        return db

    def test_profile_collects_operator_tree(self, db):
        result = db.profile("SELECT k, v FROM t WHERE k > 50 ORDER BY v")
        ops = [e.op for e in result.stats.profile]
        assert ops[0] == "PProject"
        assert "PSort" in ops and "PFilter" in ops and "PTableScan" in ops

    def test_depths_nest(self, db):
        result = db.profile("SELECT COUNT(*) FROM t WHERE k > 50")
        depths = [e.depth for e in result.stats.profile]
        assert depths[0] == 0
        assert max(depths) >= 2

    def test_rows_and_seconds_recorded(self, db):
        result = db.profile("SELECT k FROM t WHERE k >= 90")
        scan = next(e for e in result.stats.profile if e.op == "PTableScan")
        assert scan.rows == 100
        top = result.stats.profile[0]
        assert top.rows == 10
        assert top.seconds >= scan.seconds  # inclusive timing

    def test_render_profile_text(self, db):
        result = db.profile("SELECT k FROM t LIMIT 3")
        text = result.stats.render_profile()
        assert "PTableScan(t)" in text
        assert "rows" in text and "ms" in text

    def test_plain_execute_collects_nothing(self, db):
        result = db.execute("SELECT k FROM t")
        assert result.stats.profile == []


class TestFigure3Chart:
    def entries(self):
        return [
            Fig3Entry("Query 1", "Ei", "COLD", 2.0),
            Fig3Entry("Query 1", "ALi", "COLD", 0.06),
            Fig3Entry("Query 1", "Ei", "HOT", 0.05),
            Fig3Entry("Query 1", "ALi", "HOT", 0.006),
        ]

    def test_chart_structure(self):
        chart = render_figure3_chart(self.entries(), 120)
        assert "log-scale" in chart
        assert chart.count("|") == 8  # two bars edges per row, 4 rows

    def test_log_scaling_orders_bars(self):
        chart = render_figure3_chart(self.entries(), 120).splitlines()
        bar_lengths = {
            line.split()[2]: line.count("■")
            for line in chart[1:]
            if line.strip()
        }
        # Across rows: colder/slower rows have longer bars.
        assert bar_lengths  # rendered something
        chart_text = "\n".join(chart)
        assert "2.0000s" in chart_text

    def test_empty_entries(self):
        assert render_figure3_chart([], 0) == "(no data)"


class TestMixedFormatRepository:
    @pytest.fixture()
    def mixed_repo(self, tmp_path):
        spec = RepositorySpec(
            stations=("ISK",), channels=("BHE",), days=1,
            sample_rate=0.02, samples_per_record=500,
        )
        generate_repository(tmp_path, spec)
        # Add a CSV time-series file from a different instrument.
        write_csv_timeseries(
            tmp_path / "wx" / "AMS.tscsv",
            network="WX", station="AMS", location="", channel="TMP",
            sample_rate=1 / 600.0,
            start_time=1_263_081_600_000_000,  # 2010-01-10
            values=np.linspace(0.0, 10.0, 144),
        )
        return FileRepository(tmp_path, suffix=(".xseed", ".tscsv"))

    def test_uris_span_both_formats(self, mixed_repo):
        uris = mixed_repo.uris()
        assert any(u.endswith(".xseed") for u in uris)
        assert any(u.endswith(".tscsv") for u in uris)

    def test_metadata_load_covers_both(self, mixed_repo):
        db = Database()
        lazy_ingest_metadata(db, mixed_repo)
        stations = set(
            db.catalog.table("F").batch.column("station").to_pylist()
        )
        assert stations == {"ISK", "AMS"}

    def test_queries_mount_per_format(self, mixed_repo):
        db = Database()
        lazy_ingest_metadata(db, mixed_repo)
        executor = TwoStageExecutor(db, RepositoryBinding(mixed_repo))
        seismic = executor.execute(
            "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri "
            "WHERE F.station = 'ISK'"
        )
        weather = executor.execute(
            "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri "
            "WHERE F.station = 'AMS'"
        )
        assert seismic.rows[0][0] == 1728  # one day at 0.02 Hz
        assert weather.rows[0][0] == 144
