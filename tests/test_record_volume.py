"""Tests for xSEED records, volumes, and header-only scanning."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.db.errors import CorruptFileError, IngestError, TruncatedFileError
from repro.mseed import (
    HEADER_SIZE,
    RecordHeader,
    XSeedRecord,
    read_file_metadata,
    read_records,
    scan_headers,
    write_volume,
)
from repro.mseed.record import last_sample_offset, sample_time_offsets
from repro.mseed.steim import SteimError
from repro.mseed.volume import iter_records


def make_record(seq=0, station="ISK", channel="BHE", start=0, n=100, rate=20.0):
    samples = np.cumsum(np.random.default_rng(seq).integers(-5, 5, n))
    return XSeedRecord.create(
        sequence=seq,
        network="KO",
        station=station,
        location="",
        channel=channel,
        start_time=start,
        sample_rate=rate,
        samples=samples.astype(np.int32),
    )


class TestHeader:
    def test_pack_size(self):
        record = make_record()
        assert len(record.header.pack()) == HEADER_SIZE

    def test_pack_unpack_roundtrip(self):
        header = make_record().header
        assert RecordHeader.unpack(header.pack()) == header

    def test_bad_magic(self):
        raw = bytearray(make_record().header.pack())
        raw[0] = ord("Z")
        with pytest.raises(CorruptFileError):
            RecordHeader.unpack(bytes(raw))

    def test_truncated_header(self):
        with pytest.raises(TruncatedFileError):
            RecordHeader.unpack(b"\x00" * 10)

    def test_bad_magic_carries_context(self):
        raw = bytearray(make_record().header.pack())
        raw[0] = ord("Z")
        with pytest.raises(CorruptFileError) as excinfo:
            RecordHeader.unpack(bytes(raw), uri="a/b.xseed", offset=128)
        assert excinfo.value.uri == "a/b.xseed"
        assert excinfo.value.offset == 128
        assert isinstance(excinfo.value, IngestError)

    def test_end_time(self):
        header = make_record(start=1_000_000, n=21, rate=20.0).header
        assert header.end_time == 1_000_000 + 1_000_000  # 20 steps at 20 Hz

    def test_end_time_single_sample(self):
        header = make_record(start=5, n=1).header
        assert header.end_time == 5

    def test_end_time_matches_sample_times(self):
        record = make_record(start=123, n=777, rate=7.3)
        assert record.header.end_time == record.sample_times()[-1]

    @given(
        st.integers(1, 100_000),
        st.floats(0.001, 10_000.0, allow_nan=False, allow_infinity=False),
    )
    @settings(deadline=None, max_examples=200)
    def test_end_time_boundary_property(self, n, rate):
        """The header's O(1) end-time must agree with the last element of
        the full sample-time grid for every (nsamples, rate) — the two used
        to disagree by 1 µs when the float products rounded differently."""
        offsets = sample_time_offsets(n, rate)
        assert last_sample_offset(n, rate) == offsets[-1]

    def test_identifier_too_long(self):
        with pytest.raises(SteimError):
            make_record(station="TOOLONGNAME").header.pack()

    @given(
        st.integers(0, 2**31 - 1),
        st.sampled_from(["ISK", "AB", "XYZZY"]),
        st.floats(0.01, 1000.0),
        st.integers(0, 10**15),
    )
    @settings(deadline=None, max_examples=40)
    def test_header_roundtrip_property(self, seq, station, rate, start):
        header = RecordHeader(
            sequence=seq,
            network="KO",
            station=station,
            location="00",
            channel="BHZ",
            start_time=start,
            sample_rate=rate,
            nsamples=7,
            encoding=1,
            payload_len=64,
        )
        assert RecordHeader.unpack(header.pack()) == header


class TestRecord:
    def test_roundtrip(self):
        record = make_record(n=250)
        restored = XSeedRecord.unpack(record.pack())
        assert restored.header == record.header
        assert np.array_equal(restored.samples, record.samples)

    def test_sample_times_spacing(self):
        record = make_record(start=0, n=5, rate=2.0)
        assert list(record.sample_times()) == [0, 500000, 1000000, 1500000, 2000000]

    def test_truncated_payload(self):
        raw = make_record().pack()
        with pytest.raises(TruncatedFileError):
            XSeedRecord.unpack(raw[: HEADER_SIZE + 10])

    def test_unknown_encoding(self):
        record = make_record()
        bad_header = RecordHeader(
            **{**record.header.__dict__, "encoding": 99}
        )
        raw = bad_header.pack() + record.payload
        with pytest.raises(CorruptFileError):
            XSeedRecord.unpack(raw)

    def test_corrupt_payload_is_steim_and_ingest_error(self):
        """Payload corruption keeps its historical SteimError class while
        also being catchable as an IngestError (the taxonomy the mount
        service's fail-fast relies on)."""
        record = make_record(n=200)
        raw = bytearray(record.pack())
        raw[HEADER_SIZE + 36] ^= 0xFF
        with pytest.raises(SteimError) as excinfo:
            XSeedRecord.unpack(bytes(raw), uri="x.xseed", offset=0)
        assert isinstance(excinfo.value, IngestError)
        assert isinstance(excinfo.value, CorruptFileError)
        assert excinfo.value.uri == "x.xseed"
        assert excinfo.value.offset == HEADER_SIZE


class TestVolume:
    def volume(self, tmp_path, nrecords=4):
        records = [
            make_record(seq=i, start=i * 5_000_000, n=100)
            for i in range(nrecords)
        ]
        path = tmp_path / "vol.xseed"
        write_volume(path, records)
        return path, records

    def test_write_read_roundtrip(self, tmp_path):
        path, records = self.volume(tmp_path)
        restored = read_records(path)
        assert len(restored) == len(records)
        for a, b in zip(restored, records):
            assert a.header == b.header
            assert np.array_equal(a.samples, b.samples)

    def test_scan_headers_matches_full_read(self, tmp_path):
        path, records = self.volume(tmp_path)
        headers = scan_headers(path)
        assert headers == [r.header for r in records]

    def test_scan_headers_reads_less(self, tmp_path):
        """Header-only scanning must not decode payloads — verified by cost:
        the scan touches 64 bytes per record."""
        records = [
            make_record(seq=i, start=i * 5_000_000, n=2000) for i in range(8)
        ]
        path = tmp_path / "big.xseed"
        write_volume(path, records)
        headers = scan_headers(path)
        header_bytes = len(headers) * HEADER_SIZE
        assert path.stat().st_size > 3 * header_bytes

    def test_iter_records_lazy(self, tmp_path):
        path, _ = self.volume(tmp_path)
        iterator = iter_records(path)
        first = next(iterator)
        assert first.header.sequence == 0

    def test_truncated_volume(self, tmp_path):
        path, _ = self.volume(tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[:-8])
        with pytest.raises(TruncatedFileError):
            read_records(path)

    def test_truncated_volume_detected_by_header_scan(self, tmp_path):
        """scan_headers seeks over payloads, but still must notice the last
        record's payload runs past end-of-file."""
        path, _ = self.volume(tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[:-8])
        with pytest.raises(TruncatedFileError):
            scan_headers(path)

    def test_file_metadata_aggregates(self, tmp_path):
        path, records = self.volume(tmp_path)
        meta, headers = read_file_metadata(path)
        assert meta.nrecords == len(records)
        assert meta.nsamples == sum(r.header.nsamples for r in records)
        assert meta.start_time == records[0].header.start_time
        assert meta.end_time == records[-1].header.end_time
        assert meta.station == "ISK"
        assert meta.size_bytes == path.stat().st_size

    def test_empty_volume_metadata_raises(self, tmp_path):
        path = tmp_path / "empty.xseed"
        path.write_bytes(b"")
        with pytest.raises(CorruptFileError):
            read_file_metadata(path)

    def test_write_returns_bytes(self, tmp_path):
        path = tmp_path / "v.xseed"
        written = write_volume(path, [make_record()])
        assert written == path.stat().st_size
