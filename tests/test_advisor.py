"""Workload advisor: LRU-2 scores, window prediction, and prefetch.

Covers the three adaptive pieces in :mod:`repro.core.advisor` plus their
integration with the cache (granularity promotion, flood resistance) and
the executor (a synchronous prefetch round turning the next query into a
cache scan without changing its answer).
"""

from __future__ import annotations

import pytest

from repro.core import (
    CacheAdvisor,
    CacheGranularity,
    CachePolicy,
    IngestionCache,
    SessionPrefetcher,
    TwoStageExecutor,
    WorkloadPredictor,
)
from repro.db import Database
from repro.db.types import format_timestamp, parse_timestamp
from repro.ingest import RepositoryBinding, lazy_ingest_metadata

_MINUTE_US = 60 * 1_000_000


class TestCacheAdvisor:
    def test_one_timers_score_minus_one(self):
        advisor = CacheAdvisor()
        advisor.note_access("a")
        assert advisor.eviction_score("a") == -1
        assert advisor.eviction_score("never-seen") == -1

    def test_lru2_prefers_older_penultimate_access(self):
        advisor = CacheAdvisor()
        # a: accesses 1, 2; b: accesses 3, 4. Penultimate(a)=1 < 3.
        advisor.note_access("a")
        advisor.note_access("a")
        advisor.note_access("b")
        advisor.note_access("b")
        assert advisor.eviction_score("a") < advisor.eviction_score("b")
        # A fresh one-timer still sorts below both.
        advisor.note_access("c")
        assert advisor.eviction_score("c") < advisor.eviction_score("a")

    def test_promotion_threshold(self):
        advisor = CacheAdvisor(whole_file_threshold=3)
        for _ in range(2):
            advisor.note_access("hot")
        assert not advisor.wants_whole_file("hot")
        advisor.note_access("hot")
        assert advisor.wants_whole_file("hot")

    def test_profile_snapshot(self):
        advisor = CacheAdvisor()
        assert advisor.profile("x") is None
        advisor.note_access("x")
        advisor.note_access("x")
        profile = advisor.profile("x")
        assert profile.count == 2
        assert profile.prev_seq == 1
        assert profile.last_seq == 2
        assert len(advisor) == 1

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            CacheAdvisor(whole_file_threshold=0)


class TestWorkloadPredictor:
    BASE = parse_timestamp("2010-01-10T12:00:00.000")
    WIDTH = 30 * _MINUTE_US

    def _window(self, i, width=None):
        width = width or self.WIDTH
        lo = self.BASE + i * (self.WIDTH // 2)
        return (lo, lo + width)

    def test_cold_trail_predicts_nothing(self):
        predictor = WorkloadPredictor()
        assert predictor.predict() is None
        assert predictor.observe_and_predict(self._window(0)) is None

    def test_slide_extrapolates_next_step(self):
        predictor = WorkloadPredictor(widen_fraction=0.0)
        predictor.observe(self._window(0))
        predicted = predictor.observe_and_predict(self._window(1))
        assert predicted is not None
        assert predicted.kind == "slide"
        assert predicted.interval == self._window(2)

    def test_widening_covers_sloppy_slides(self):
        predictor = WorkloadPredictor(widen_fraction=0.25)
        predictor.observe(self._window(0))
        predicted = predictor.observe_and_predict(self._window(1))
        margin = self.WIDTH // 4
        expected = self._window(2)
        assert predicted.interval == (
            expected[0] - margin, expected[1] + margin
        )

    def test_move_on_jump_is_unpredictable(self):
        predictor = WorkloadPredictor()
        predictor.observe(self._window(0))
        # Same width but a jump far beyond 2x the window: MOVE_ON.
        assert predictor.observe_and_predict(self._window(40)) is None

    def test_zoom_in_contracts_around_center(self):
        predictor = WorkloadPredictor(widen_fraction=0.0)
        wide = (self.BASE, self.BASE + 4 * self.WIDTH)
        center = (wide[0] + wide[1]) // 2
        half = self.WIDTH
        predictor.observe(wide)
        predicted = predictor.observe_and_predict(
            (center - half, center + half)
        )
        assert predicted is not None
        assert predicted.kind == "zoom-in"
        lo, hi = predicted.interval
        assert wide[0] < lo < hi < wide[1]
        assert hi - lo < 2 * half

    def test_zoom_out_expands_around_center(self):
        predictor = WorkloadPredictor(widen_fraction=0.0)
        half = self.WIDTH
        center = self.BASE + 4 * self.WIDTH
        predictor.observe((center - half, center + half))
        predicted = predictor.observe_and_predict(
            (center - 2 * half, center + 2 * half)
        )
        assert predicted is not None
        assert predicted.kind == "zoom-out"
        lo, hi = predicted.interval
        assert lo < center - 2 * half
        assert hi > center + 2 * half

    def test_none_and_empty_windows_ignored(self):
        predictor = WorkloadPredictor()
        predictor.observe(self._window(0))
        predictor.observe(None)
        predictor.observe((self.BASE, self.BASE - 1))  # empty
        predicted = predictor.observe_and_predict(self._window(1))
        assert predicted is not None and predicted.kind == "slide"


class TestAdaptiveCacheIntegration:
    def _batch(self, nbytes):
        # The cache charges ColumnBatch.nbytes(); a stub with the right
        # surface keeps the test focused on policy mechanics.
        class _Stub:
            def __init__(self, n):
                self._n = n

            def nbytes(self):
                return self._n

            @property
            def num_rows(self):
                return 1

        return _Stub(nbytes)

    def test_flood_cannot_evict_twice_touched_file(self):
        cache = IngestionCache(
            CachePolicy.ADAPTIVE, CacheGranularity.FILE, capacity_bytes=300
        )
        cache.store("hot", self._batch(100), signature=None)
        assert cache.lookup("hot") is not None  # second access: reuse history
        for i in range(6):
            cache.store(f"sweep-{i}", self._batch(100), signature=None)
        assert cache.stats.evictions > 0
        assert cache.lookup("hot") is not None
        assert cache.contains("hot")

    def test_plain_lru_would_have_evicted_it(self):
        cache = IngestionCache(
            CachePolicy.LRU, CacheGranularity.FILE, capacity_bytes=300
        )
        cache.store("hot", self._batch(100), signature=None)
        assert cache.lookup("hot") is not None
        for i in range(6):
            cache.store(f"sweep-{i}", self._batch(100), signature=None)
        assert cache.lookup("hot") is None

    def test_granularity_promotion_flips_to_file(self):
        advisor = CacheAdvisor(whole_file_threshold=3)
        cache = IngestionCache(
            CachePolicy.ADAPTIVE,
            CacheGranularity.TUPLE,
            capacity_bytes=10_000,
            advisor=advisor,
        )
        for _ in range(3):
            advisor.note_access("hot")
        assert cache.wants_whole_file("hot")
        assert cache.granularity_for("hot") is CacheGranularity.FILE
        assert cache.granularity_for("cold") is CacheGranularity.TUPLE


class TestSessionPrefetcher:
    def _sql(self, lo_us, hi_us):
        return (
            "SELECT COUNT(*) AS n, AVG(D.sample_value) AS a "
            "FROM F JOIN D ON F.uri = D.uri "
            "WHERE F.station = 'ISK' "
            f"AND D.sample_time >= '{format_timestamp(lo_us)}' "
            f"AND D.sample_time < '{format_timestamp(hi_us)}'"
        )

    def _sliding(self, steps):
        base = parse_timestamp("2010-01-10T08:00:00.000")
        width = 60 * _MINUTE_US
        return [
            (base + i * (width // 2), base + i * (width // 2) + width)
            for i in range(steps)
        ]

    def _executor(self, tiny_repo, prefetch_cache=True):
        db = Database()
        lazy_ingest_metadata(db, tiny_repo)
        cache = IngestionCache(CachePolicy.UNBOUNDED, CacheGranularity.TUPLE)
        return TwoStageExecutor(
            db,
            RepositoryBinding(tiny_repo),
            cache=cache,
            selective_mounts=True,
        )

    def test_synchronous_round_warms_next_window(self, tiny_repo):
        executor = self._executor(tiny_repo)
        prefetcher = SessionPrefetcher(
            executor.mounts, executor.statistics, synchronous=True
        )
        windows = self._sliding(3)
        plain = self._executor(tiny_repo)
        expected = [
            plain.execute(self._sql(lo, hi)).rows for lo, hi in windows
        ]

        rows = []
        for lo, hi in windows:
            rows.append(executor.execute(self._sql(lo, hi)).rows)
            prefetcher.observe((lo, hi))
        assert rows == expected

        stats = prefetcher.stats
        assert stats.observed == 3
        assert stats.predictions >= 1
        assert stats.files_prefetched > 0
        # The prefetched coverage turned the last query's mounts into scans.
        assert executor.mounts.stats.prefetched_mounts > 0
        assert executor.mounts.stats.cache_scans > 0

    def test_wrong_prediction_never_changes_answers(self, tiny_repo):
        """A prediction past the archive's end prefetches nothing and the
        following unrelated query still answers identically."""
        executor = self._executor(tiny_repo)
        prefetcher = SessionPrefetcher(
            executor.mounts, executor.statistics, synchronous=True
        )
        base = parse_timestamp("2010-01-11T20:00:00.000")
        width = 60 * _MINUTE_US
        # Slide toward (and past) the end of the last day.
        for i in range(4):
            lo = base + i * width
            prefetcher.observe((lo, lo + width))
        check = self._sliding(1)[0]
        plain = self._executor(tiny_repo)
        assert (
            executor.execute(self._sql(*check)).rows
            == plain.execute(self._sql(*check)).rows
        )

    def test_discard_policy_disables_prefetch(self, tiny_repo):
        db = Database()
        lazy_ingest_metadata(db, tiny_repo)
        executor = TwoStageExecutor(db, RepositoryBinding(tiny_repo))
        prefetcher = SessionPrefetcher(
            executor.mounts, executor.statistics, synchronous=True
        )
        for lo, hi in self._sliding(3):
            prefetcher.observe((lo, hi))
        assert prefetcher.stats.files_prefetched == 0
        assert prefetcher.stats.skipped_blocked > 0

    def test_async_worker_drains_and_closes(self, tiny_repo):
        executor = self._executor(tiny_repo)
        with SessionPrefetcher(
            executor.mounts, executor.statistics
        ) as prefetcher:
            for lo, hi in self._sliding(3):
                prefetcher.observe((lo, hi))
            assert prefetcher.flush(timeout=10.0)
            assert prefetcher.stats.rounds >= 1
        # close() is idempotent and a post-close observe is a no-op.
        prefetcher.close()
        prefetcher.observe((0, 1))

    def test_byte_budget_bounds_a_round(self, tiny_repo):
        executor = self._executor(tiny_repo)
        prefetcher = SessionPrefetcher(
            executor.mounts,
            executor.statistics,
            synchronous=True,
            max_bytes_per_round=1,
        )
        for lo, hi in self._sliding(3):
            prefetcher.observe((lo, hi))
        stats = prefetcher.stats
        # At most one file fits under a 1-byte budget; the rest are counted.
        assert stats.files_prefetched <= stats.rounds
        assert stats.skipped_budget > 0
