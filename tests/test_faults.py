"""The deterministic fault-injection harness.

Two layers of guarantee: the plan itself (specs fire at exactly the chosen
per-URI read indices, and a seed reproduces them exactly) and the engine's
response (transient faults are absorbed by the retry ladder; persistent
faults surface through the failure taxonomy with identical reports across
same-seed runs).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core import TwoStageExecutor
from repro.db import Database
from repro.db.errors import FileIngestError
from repro.ingest import RepositoryBinding, lazy_ingest_metadata
from repro.mseed import (
    FileRepository,
    RepositorySpec,
    generate_repository,
    read_records,
)
from repro.mseed.iohooks import get_volume_io_hook
from repro.testing import (
    FAULT_KINDS,
    READ_LATENCY,
    RECOVERABLE_KINDS,
    SHORT_READ,
    STALE_FLIP,
    TRANSIENT_OSERROR,
    FaultPlan,
    FaultSpec,
)

SPEC = RepositorySpec(
    stations=("ISK",),
    channels=("BHE",),
    days=2,
    sample_rate=0.02,
    samples_per_record=500,
)


@pytest.fixture()
def repo(tmp_path):
    generate_repository(tmp_path, SPEC)
    return FileRepository(tmp_path)


def _executor(repo, workers=1):
    db = Database()
    lazy_ingest_metadata(db, repo)
    return TwoStageExecutor(db, RepositoryBinding(repo), mount_workers=workers)


COUNT_SQL = "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri"


# -- spec validation and trigger windows ----------------------------------------


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(uri_suffix="a", kind="lightning-strike")

    def test_zero_times_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(uri_suffix="a", kind=TRANSIENT_OSERROR, times=0)

    def test_negative_at_read_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(uri_suffix="a", kind=TRANSIENT_OSERROR, at_read=-1)

    def test_fires_in_window_only(self):
        spec = FaultSpec(
            uri_suffix="a", kind=TRANSIENT_OSERROR, at_read=2, times=3
        )
        assert [spec.fires_at(i) for i in range(7)] == [
            False, False, True, True, True, False, False,
        ]

    def test_forever_fires_from_at_read_on(self):
        spec = FaultSpec(
            uri_suffix="a", kind=TRANSIENT_OSERROR, at_read=1, times=-1
        )
        assert not spec.fires_at(0)
        assert all(spec.fires_at(i) for i in (1, 2, 100))


# -- seed determinism ------------------------------------------------------------


class TestSeeding:
    URIS = ["x/a.xseed", "x/b.xseed", "y/c.xseed", "y/d.xseed", "y/e.xseed"]

    def test_same_seed_same_specs(self):
        one = FaultPlan.seeded(7, self.URIS)
        two = FaultPlan.seeded(7, list(reversed(self.URIS)))
        assert one.specs == two.specs

    def test_different_seeds_eventually_differ(self):
        base = FaultPlan.seeded(0, self.URIS).specs
        assert any(
            FaultPlan.seeded(seed, self.URIS).specs != base
            for seed in range(1, 10)
        )

    def test_seeded_draws_from_requested_kinds(self):
        plan = FaultPlan.seeded(
            3, self.URIS, kinds=(READ_LATENCY,), fault_rate=1.0
        )
        assert len(plan.specs) == len(self.URIS)
        assert all(spec.kind == READ_LATENCY for spec in plan.specs)

    def test_recoverable_kinds_exclude_short_read(self):
        assert SHORT_READ not in RECOVERABLE_KINDS
        assert set(RECOVERABLE_KINDS) < set(FAULT_KINDS)


# -- injection mechanics at the volume layer -------------------------------------


class TestInjection:
    def test_transient_oserror_fires_once_then_recovers(self, repo):
        uri = repo.uris()[0]
        path = repo.path_of(uri)
        plan = FaultPlan(
            [FaultSpec(uri_suffix=uri, kind=TRANSIENT_OSERROR, times=1)]
        )
        with plan.install():
            with pytest.raises(OSError):
                read_records(path, uri)
            # Read counters are global per URI: the retry's reads land past
            # the trigger window, so the same call now succeeds.
            assert read_records(path, uri)
        assert [f.kind for f in plan.log] == [TRANSIENT_OSERROR]
        assert plan.log[0].read_index == 0

    def test_short_read_surfaces_as_parse_failure(self, repo):
        uri = repo.uris()[0]
        plan = FaultPlan(
            [FaultSpec(uri_suffix=uri, kind=SHORT_READ, at_read=1, times=1)]
        )
        with plan.install():
            with pytest.raises(Exception) as excinfo:
                read_records(repo.path_of(uri), uri)
        assert excinfo.value is not None

    def test_stale_flip_bumps_mtime_after_read(self, repo):
        uri = repo.uris()[0]
        path = repo.path_of(uri)
        before = path.stat().st_mtime_ns
        plan = FaultPlan(
            [FaultSpec(uri_suffix=uri, kind=STALE_FLIP, at_read=0, times=1)]
        )
        with plan.install():
            read_records(path, uri)
        assert path.stat().st_mtime_ns > before

    def test_latency_wait_is_interruptible(self, repo):
        uri = repo.uris()[0]
        interrupt = threading.Event()
        interrupt.set()  # already fired: waits must return immediately
        plan = FaultPlan(
            [
                FaultSpec(
                    uri_suffix=uri,
                    kind=READ_LATENCY,
                    times=-1,
                    delay_seconds=30.0,
                )
            ],
            interrupt=interrupt,
        )
        started = time.perf_counter()
        with plan.install():
            read_records(repo.path_of(uri), uri)
        assert time.perf_counter() - started < 1.0

    def test_install_restores_previous_hook(self, repo):
        plan = FaultPlan([])
        assert get_volume_io_hook() is None
        with plan.install():
            assert get_volume_io_hook() is plan
        assert get_volume_io_hook() is None

    def test_unmatched_uris_untouched(self, repo):
        uri = repo.uris()[0]
        plan = FaultPlan(
            [FaultSpec(uri_suffix="no-such-file", kind=TRANSIENT_OSERROR)]
        )
        with plan.install():
            assert read_records(repo.path_of(uri), uri)
        assert plan.log == []


# -- engine response: absorb or surface, identically across runs -----------------


class TestEngineDeterminism:
    def _run_with_seed(self, repo, seed, workers):
        executor = _executor(repo, workers=workers)
        executor.on_mount_error = "skip"
        plan = FaultPlan.seeded(
            seed,
            repo.uris(),
            kinds=(TRANSIENT_OSERROR,),
            fault_rate=0.6,
            times=-1,  # persistent: the retry ladder cannot absorb these
        )
        with plan.install():
            outcome = executor.execute(COUNT_SQL)
        return plan, outcome

    def test_same_seed_identical_failure_report(self, repo):
        plan_a, out_a = self._run_with_seed(repo, seed=11, workers=1)
        plan_b, out_b = self._run_with_seed(repo, seed=11, workers=1)
        assert plan_a.signature() == plan_b.signature()
        report_a = out_a.timings.mount_failures
        report_b = out_b.timings.mount_failures
        assert report_a.uris() == report_b.uris()
        assert [f.error for f in report_a.failures] == [
            f.error for f in report_b.failures
        ]
        assert out_a.rows == out_b.rows

    def test_signature_stable_across_worker_counts(self, repo):
        # Read counters are per URI, so worker interleaving cannot change
        # which faults fire — only the log *order*, which signature() sorts.
        plan_serial, _ = self._run_with_seed(repo, seed=11, workers=1)
        plan_parallel, _ = self._run_with_seed(repo, seed=11, workers=4)
        assert plan_serial.signature() == plan_parallel.signature()

    def test_transient_fault_absorbed_by_retry(self, repo):
        baseline = _executor(repo).execute(COUNT_SQL).rows
        executor = _executor(repo)
        victim = repo.uris()[0]
        plan = FaultPlan(
            [FaultSpec(uri_suffix=victim, kind=TRANSIENT_OSERROR, times=1)]
        )
        with plan.install():
            rows = executor.execute(COUNT_SQL).rows
        assert rows == baseline
        assert executor.mounts.stats.retries >= 1

    def test_persistent_fault_surfaces_uri_fail_fast(self, repo):
        executor = _executor(repo, workers=4)
        victim = repo.uris()[1]
        plan = FaultPlan(
            [FaultSpec(uri_suffix=victim, kind=TRANSIENT_OSERROR, times=-1)]
        )
        with plan.install():
            with pytest.raises(FileIngestError) as excinfo:
                executor.execute(COUNT_SQL)
        assert excinfo.value.mount_uri == victim
