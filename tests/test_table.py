"""Tests for ColumnBatch and Table invariants."""

import numpy as np
import pytest

from repro.db import Column, ColumnBatch, DataType, TableKind, TableSchema
from repro.db.errors import CatalogError, ExecutionError
from repro.db.schema import ColumnDef, ForeignKey
from repro.db.table import Table, concat_batches


def make_batch(n=3):
    return ColumnBatch(
        ["a", "b"],
        [
            Column.from_pylist(DataType.INT64, list(range(n))),
            Column.from_pylist(DataType.STRING, [f"s{i}" for i in range(n)]),
        ],
    )


class TestColumnBatch:
    def test_basic_shape(self):
        batch = make_batch()
        assert batch.num_rows == 3
        assert batch.num_columns == 2

    def test_ragged_batch_rejected(self):
        with pytest.raises(ExecutionError):
            ColumnBatch(
                ["a", "b"],
                [
                    Column.from_pylist(DataType.INT64, [1]),
                    Column.from_pylist(DataType.INT64, [1, 2]),
                ],
            )

    def test_name_count_mismatch_rejected(self):
        with pytest.raises(ExecutionError):
            ColumnBatch(["a"], [])

    def test_column_lookup_case_insensitive(self):
        batch = make_batch()
        assert batch.column("A").to_pylist() == [0, 1, 2]

    def test_unknown_column(self):
        with pytest.raises(ExecutionError):
            make_batch().column("zzz")

    def test_take_filter_slice(self):
        batch = make_batch(4)
        assert batch.take(np.array([3, 0])).rows() == [(3, "s3"), (0, "s0")]
        mask = np.array([True, False, False, True])
        assert batch.filter(mask).rows() == [(0, "s0"), (3, "s3")]
        assert batch.slice(1, 3).rows() == [(1, "s1"), (2, "s2")]

    def test_select_reorders(self):
        batch = make_batch(1)
        assert batch.select(["b", "a"]).rows() == [("s0", 0)]

    def test_rows_empty(self):
        empty = ColumnBatch.empty_like(["x"], [DataType.INT64])
        assert empty.rows() == []


class TestConcatBatches:
    def test_concat(self):
        merged = concat_batches([make_batch(2), make_batch(1)])
        assert merged.num_rows == 3

    def test_layout_mismatch(self):
        other = ColumnBatch(["x"], [Column.from_pylist(DataType.INT64, [1])])
        with pytest.raises(ExecutionError):
            concat_batches([make_batch(1), other])

    def test_empty_list_rejected(self):
        with pytest.raises(ExecutionError):
            concat_batches([])


class TestSchema:
    def test_duplicate_column_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("t", [ColumnDef("a", DataType.INT64),
                              ColumnDef("A", DataType.INT64)])

    def test_primary_key_must_exist(self):
        with pytest.raises(CatalogError):
            TableSchema(
                "t", [ColumnDef("a", DataType.INT64)], primary_key=("b",)
            )

    def test_foreign_key_columns_must_exist(self):
        with pytest.raises(CatalogError):
            TableSchema(
                "t",
                [ColumnDef("a", DataType.INT64)],
                foreign_keys=[ForeignKey(("b",), "other", ("x",))],
            )

    def test_serialization_roundtrip(self):
        schema = TableSchema(
            "t",
            [ColumnDef("a", DataType.INT64), ColumnDef("s", DataType.STRING)],
            kind=TableKind.ACTUAL,
            primary_key=("a",),
            foreign_keys=[ForeignKey(("s",), "other", ("s",))],
        )
        assert TableSchema.from_dict(schema.to_dict()) == schema

    def test_kind_metadata_classification(self):
        assert TableKind.METADATA.counts_as_metadata
        assert TableKind.DERIVED.counts_as_metadata
        assert not TableKind.ACTUAL.counts_as_metadata

    def test_column_index(self):
        schema = TableSchema("t", [ColumnDef("a", DataType.INT64),
                                   ColumnDef("b", DataType.STRING)])
        assert schema.column_index("B") == 1
        with pytest.raises(CatalogError):
            schema.column_index("c")


class TestTable:
    def schema(self):
        return TableSchema(
            "t", [ColumnDef("a", DataType.INT64), ColumnDef("b", DataType.STRING)]
        )

    def test_starts_empty(self):
        table = Table(self.schema())
        assert table.num_rows == 0

    def test_append_and_truncate(self):
        table = Table(self.schema())
        table.append(make_batch(2))
        table.append(make_batch(3))
        assert table.num_rows == 5
        table.truncate()
        assert table.num_rows == 0

    def test_append_layout_mismatch(self):
        table = Table(self.schema())
        wrong = ColumnBatch(["a"], [Column.from_pylist(DataType.INT64, [1])])
        with pytest.raises(ExecutionError):
            table.append(wrong)

    def test_append_dtype_mismatch(self):
        table = Table(self.schema())
        wrong = ColumnBatch(
            ["a", "b"],
            [
                Column.from_pylist(DataType.FLOAT64, [1.0]),
                Column.from_pylist(DataType.STRING, ["x"]),
            ],
        )
        with pytest.raises(ExecutionError):
            table.append(wrong)

    def test_replace(self):
        table = Table(self.schema())
        table.replace(make_batch(4))
        assert table.num_rows == 4
