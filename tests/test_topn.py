"""Top-N/LIMIT pushdown with early-terminating mounts (cost tentpole).

Covers the whole stack: the ORDER BY pushdown regression (selections must
commute with Sort/Distinct), LIMIT validation, the ``fuse-top-n`` and
``cost-based-join-order`` optimizer passes, the statistics catalog, the
bounded-memory ``top_n_indices`` kernel (property-tested against the full
sort), the :func:`find_top_n_target` static gate, the
:class:`TopNBranchMonitor` threshold/audit machinery, mount release on the
pool and the shared scheduler, and end-to-end equivalence plus the
early-termination accounting the benchmark asserts on.
"""

from __future__ import annotations

import itertools
import threading

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    QueryBudget,
    ON_BUDGET_PARTIAL,
    ON_BUDGET_RAISE,
    TopNBranchMonitor,
    TwoStageExecutor,
    apply_ali_rewrite,
    branch_hulls,
    decompose,
    find_top_n_target,
)
from repro.core.mountpool import MountPool
from repro.db import (
    BindError,
    Column,
    ColumnBatch,
    ColumnDef,
    Database,
    DataType,
    SqlSyntaxError,
    StatisticsCatalog,
    TableKind,
    TableSchema,
    collect_statistics,
)
from repro.db.errors import PlanInvariantError
from repro.db.expr import ColumnRef, Comparison, Literal
from repro.db.plan.binder import Binder
from repro.db.plan.kernels import sort_indices, top_n_indices
from repro.db.plan.logical import (
    Aggregate,
    Distinct,
    Join,
    Limit,
    Mount,
    Project,
    Scan,
    Select,
    Sort,
    TopN,
    UnionAll,
)
from repro.db.plan.rewrite import (
    cost_based_join_order,
    fuse_top_n,
    push_down_selections,
)
from repro.db.plan.verify import verify_plan
from repro.db.sql.parser import parse_sql
from repro.ingest import RepositoryBinding, lazy_ingest_metadata
from repro.serve import MountScheduler, SchedulerPolicy

from test_mountpool import RecordingExtract, keys

# Descending latest-K over the tiny repository: the day-011 files bound the
# answer, so every day-010 branch is provably skippable once the heap fills.
LATEST_SQL = (
    "SELECT D.sample_time, D.sample_value FROM F "
    "JOIN D ON F.uri = D.uri "
    "ORDER BY D.sample_time DESC LIMIT 5"
)


def make_executor(repo, **kwargs):
    db = Database()
    lazy_ingest_metadata(db, repo)
    return TwoStageExecutor(db, RepositoryBinding(repo), **kwargs)


@pytest.fixture()
def plain_db():
    db = Database()
    for name, kind in (
        ("M1", TableKind.METADATA),
        ("M2", TableKind.METADATA),
        ("A1", TableKind.ACTUAL),
    ):
        db.create_table(
            TableSchema(
                name,
                [
                    ColumnDef("k", DataType.INT64),
                    ColumnDef("v", DataType.FLOAT64),
                    ColumnDef("s", DataType.STRING),
                ],
                kind=kind,
            )
        )
    return db


def _eq_pred(key: str, value: str) -> Comparison:
    return Comparison(
        "=",
        ColumnRef(key, DataType.STRING),
        Literal(value, DataType.STRING),
    )


class TestPushdownThroughSortAndDistinct:
    """Regression: ``_push`` once treated Sort (and Distinct) as barriers, so
    a selection sitting above an ORDER BY never reached the scan — and the
    run-time rewrite then produced unfused whole-file mounts."""

    def _scan(self):
        return Scan(
            "M1",
            "m1",
            [("m1.k", DataType.INT64), ("m1.s", DataType.STRING)],
        )

    def test_selection_commutes_with_sort(self):
        scan = self._scan()
        sort = Sort(scan, [(ColumnRef("m1.k", DataType.INT64), True)])
        plan = Select(sort, _eq_pred("m1.s", "x"))
        pushed = push_down_selections(plan)
        assert isinstance(pushed, Sort)
        assert isinstance(pushed.child, Select)
        assert isinstance(pushed.child.child, Scan)

    def test_selection_commutes_with_distinct(self):
        scan = self._scan()
        plan = Select(Distinct(scan), _eq_pred("m1.s", "x"))
        pushed = push_down_selections(plan)
        assert isinstance(pushed, Distinct)
        assert isinstance(pushed.child, Select)

    def test_limit_stays_a_barrier(self):
        """σ over LIMIT is not the same query as LIMIT over σ."""
        scan = self._scan()
        plan = Select(Limit(scan, 3), _eq_pred("m1.s", "x"))
        pushed = push_down_selections(plan)
        assert isinstance(pushed, Select)
        assert isinstance(pushed.child, Limit)

    def test_order_by_results_unchanged(self, plain_db):
        plain_db.insert_rows(
            "M1", [(3, 1.0, "x"), (1, 2.0, "y"), (2, 3.0, "x")]
        )
        sql = "SELECT k FROM M1 WHERE s = 'x' ORDER BY k"
        assert plain_db.execute(sql).batch.column("k").to_pylist() == [2, 3]

    def test_order_by_mounts_carry_fused_predicate(self, executor):
        """End to end: an ORDER BY query's rewritten stage-2 plan must fuse
        the time predicate (and its pruning interval) into every Mount."""
        sql = (
            "SELECT D.sample_time FROM F JOIN D ON F.uri = D.uri "
            "WHERE D.sample_time >= '2010-01-10T10:00:00.000' "
            "AND D.sample_time < '2010-01-10T11:00:00.000' "
            "ORDER BY D.sample_time DESC LIMIT 3"
        )
        db = executor.db
        plan = db.optimize(
            db.bind_sql(sql), metadata_first=True, stats=executor.statistics()
        )
        decomposition = decompose(
            plan, db.catalog.is_metadata_table, executor._uri_column_of
        )
        ctx = db.make_context(mounter=executor.mounts)
        if decomposition.qf is not None:
            stage1 = db.execute_plan(decomposition.qf, ctx)
            ctx.results[decomposition.result_tag] = stage1.batch
        files_by_alias = executor._files_of_interest(decomposition, ctx)
        rewritten = apply_ali_rewrite(
            decomposition.qs,
            files_by_alias,
            executor.cache,
            time_column=executor.mounts.time_column,
        )
        mounts = [n for n in rewritten.walk() if isinstance(n, Mount)]
        assert mounts, "rewrite produced no mount branches"
        for mount in mounts:
            assert mount.predicate is not None
            assert mount.interval is not None


class TestLimitValidation:
    def test_negative_limit_rejected_at_parse(self, plain_db):
        with pytest.raises(SqlSyntaxError, match="non-negative"):
            plain_db.bind_sql("SELECT v FROM M1 LIMIT -1")

    def test_negative_limit_rejected_at_bind(self, plain_db):
        stmt = parse_sql("SELECT v FROM M1 LIMIT 1")
        stmt.limit = -1  # a front end bypassing the parser
        with pytest.raises(BindError, match="non-negative"):
            Binder(plain_db.catalog).bind(stmt)

    def test_negative_limit_rejected_by_verifier(self):
        scan = Scan("M1", "m1", [("m1.k", DataType.INT64)])
        with pytest.raises(PlanInvariantError):
            verify_plan(Limit(scan, -2), "test")

    def test_limit_zero_is_legal_and_empty(self, plain_db):
        plain_db.insert_rows("M1", [(1, 1.0, "x")])
        result = plain_db.execute("SELECT k, s FROM M1 LIMIT 0")
        assert result.names == ["k", "s"]
        assert result.batch.num_rows == 0

    def test_limit_zero_never_mounts(self, executor):
        """PLimit count==0 short-circuits without pulling its child, so the
        serial pool's lazy extraction never touches a file."""
        result = executor.execute(
            "SELECT D.sample_time FROM F JOIN D ON F.uri = D.uri LIMIT 0"
        )
        assert result.rows == []
        assert executor.mounts.stats.mounts == 0
        assert executor.mounts.stats.bytes_read == 0


class TestFuseTopN:
    def _sorted_scan(self):
        scan = Scan(
            "M1", "m1", [("m1.k", DataType.INT64), ("m1.v", DataType.FLOAT64)]
        )
        return Sort(scan, [(ColumnRef("m1.v", DataType.FLOAT64), True)])

    def test_limit_over_sort_fuses(self):
        fused = fuse_top_n(Limit(self._sorted_scan(), 3))
        assert isinstance(fused, TopN)
        assert fused.count == 3
        assert verify_plan(fused, "fuse-top-n") is fused

    def test_limit_over_project_over_sort_fuses(self):
        sort = self._sorted_scan()
        project = Project(
            sort, [("v", ColumnRef("m1.v", DataType.FLOAT64))]
        )
        fused = fuse_top_n(Limit(project, 2))
        assert isinstance(fused, Project)
        assert isinstance(fused.child, TopN)

    def test_distinct_between_blocks_fusion(self):
        """LIMIT k of DISTINCT rows ≠ DISTINCT of the top k rows."""
        plan = Limit(Distinct(self._sorted_scan()), 3)
        fused = fuse_top_n(plan)
        assert isinstance(fused, Limit)

    def test_limit_zero_not_fused(self):
        fused = fuse_top_n(Limit(self._sorted_scan(), 0))
        assert isinstance(fused, Limit)

    def test_sql_pipeline_produces_topn(self, plain_db):
        plan = plain_db.optimize(
            plain_db.bind_sql("SELECT v FROM M1 ORDER BY v LIMIT 3")
        )
        kinds = [type(n) for n in plan.walk()]
        assert TopN in kinds
        assert Sort not in kinds and Limit not in kinds

    def test_fused_results_match_sort_plus_slice(self, plain_db):
        plain_db.insert_rows(
            "M1",
            [(1, 3.0, "a"), (2, 1.0, "b"), (3, 2.0, "c"), (4, 1.0, "d")],
        )
        result = plain_db.execute(
            "SELECT s FROM M1 ORDER BY v, k LIMIT 3"
        )
        assert result.batch.column("s").to_pylist() == ["b", "d", "c"]


class TestCostBasedJoinOrder:
    def test_smaller_metadata_side_becomes_build_side(self, plain_db):
        """PHashJoin builds on the right child, so the pass must put the
        smaller estimated input there."""
        plan = push_down_selections(
            plain_db.bind_sql("SELECT M1.v FROM M1 JOIN M2 ON M1.k = M2.k")
        )
        stats = StatisticsCatalog(table_rows={"m1": 10, "m2": 10_000})
        ordered = cost_based_join_order(
            plan, stats, plain_db.catalog.is_metadata_table
        )
        join = next(n for n in ordered.walk() if isinstance(n, Join))
        assert isinstance(join.left, Scan) and join.left.table_name == "M2"
        assert isinstance(join.right, Scan) and join.right.table_name == "M1"

    def test_already_ordered_join_untouched(self, plain_db):
        plan = push_down_selections(
            plain_db.bind_sql("SELECT M1.v FROM M2 JOIN M1 ON M1.k = M2.k")
        )
        stats = StatisticsCatalog(table_rows={"m1": 10, "m2": 10_000})
        ordered = cost_based_join_order(
            plan, stats, plain_db.catalog.is_metadata_table
        )
        join = next(n for n in ordered.walk() if isinstance(n, Join))
        assert join.right.table_name == "M1"

    def test_actual_metadata_boundary_never_flipped(self, plain_db):
        """The metadata-first split that decompose cuts on must survive even
        when the actual side estimates smaller."""
        plan = push_down_selections(
            plain_db.bind_sql("SELECT A1.v FROM A1 JOIN M1 ON A1.k = M1.k")
        )
        stats = StatisticsCatalog(table_rows={"a1": 5, "m1": 10_000})
        ordered = cost_based_join_order(
            plan, stats, plain_db.catalog.is_metadata_table
        )
        join = next(n for n in ordered.walk() if isinstance(n, Join))
        assert join.left.table_name == "A1"

    def test_selectivity_shapes_the_estimate(self, plain_db):
        stats = StatisticsCatalog(table_rows={"m1": 1000})
        scan = push_down_selections(
            plain_db.bind_sql("SELECT v FROM M1 WHERE s = 'x'")
        )
        select = next(n for n in scan.walk() if isinstance(n, Select))
        assert stats.estimate_rows(select) == pytest.approx(100.0)
        ranged = plain_db.bind_sql("SELECT v FROM M1 WHERE v > 1.0")
        select = next(n for n in ranged.walk() if isinstance(n, Select))
        assert stats.estimate_rows(select) == pytest.approx(300.0)

    def test_reordered_results_identical(self, plain_db):
        plain_db.insert_rows("M1", [(1, 1.0, "x"), (2, 2.0, "y")])
        plain_db.insert_rows("M2", [(1, 5.0, "m"), (2, 6.0, "n")])
        sql = (
            "SELECT M1.s, M2.s FROM M1 JOIN M2 ON M1.k = M2.k "
            "ORDER BY M1.k"
        )
        plan = push_down_selections(plain_db.bind_sql(sql))
        stats = StatisticsCatalog(table_rows={"m1": 2, "m2": 2})
        ordered = cost_based_join_order(
            plan, stats, plain_db.catalog.is_metadata_table
        )
        assert (
            plain_db.execute_plan(plan).rows()
            == plain_db.execute_plan(ordered).rows()
        )


class TestStatisticsCatalog:
    def test_collects_row_counts_and_file_hulls(self, ali_db, tiny_repo):
        stats = collect_statistics(ali_db.catalog, file_table="F")
        assert stats.table_rows["f"] == len(tiny_repo.uris())
        assert set(stats.files) == set(tiny_repo.uris())
        for uri in tiny_repo.uris():
            lo, hi = stats.file_span(uri)
            assert lo < hi
            assert stats.file_bytes(uri) is not None

    def test_unknown_table_uses_default_rows(self):
        stats = StatisticsCatalog(table_rows={}, default_rows=42)
        scan = Scan("Nope", "n", [("n.k", DataType.INT64)])
        assert stats.estimate_rows(scan) == 42.0

    def test_missing_file_table_degrades_to_empty(self, plain_db):
        stats = collect_statistics(plain_db.catalog, file_table="F")
        assert stats.files == {}
        assert stats.file_span("anything") is None

    def test_executor_invalidates_on_metadata_reload(self, tiny_repo):
        executor = make_executor(tiny_repo)
        first = executor.statistics()
        assert executor.statistics() is first  # cached on batch identity
        table = executor.db.catalog.table("F")
        table.batch = table.batch.select(list(table.batch.names))
        assert executor.statistics() is not first


class TestFindTopNTarget:
    SCHEMA = [
        ("d.sample_time", DataType.TIMESTAMP),
        ("d.sample_value", DataType.FLOAT64),
    ]

    def _mount(self, uri, interval=None, interval_column=None, alias="d"):
        return Mount(
            uri=uri,
            table_name="D",
            alias=alias,
            output=list(self.SCHEMA),
            interval=interval,
            interval_column=interval_column,
        )

    def _key(self):
        return ColumnRef("d.sample_time", DataType.TIMESTAMP)

    def _target_plan(self, branches, count=5, ascending=False):
        union = UnionAll(branches, declared_output=list(self.SCHEMA))
        return TopN(union, [(self._key(), ascending)], count)

    def test_matches_canonical_shape(self):
        plan = self._target_plan([self._mount("a"), self._mount("b")])
        target = find_top_n_target(plan, "sample_time")
        assert target is not None
        assert target.key == "d.sample_time"
        assert target.ascending is False

    def test_transparent_nodes_allowed_between(self):
        union = UnionAll(
            [self._mount("a")], declared_output=list(self.SCHEMA)
        )
        inner = Select(
            union,
            Comparison(
                ">",
                self._key(),
                Literal(0, DataType.TIMESTAMP),
            ),
        )
        plan = TopN(inner, [(self._key(), True)], 3)
        assert find_top_n_target(plan, "sample_time") is not None

    def test_aggregate_between_rejected(self):
        union = UnionAll(
            [self._mount("a")], declared_output=list(self.SCHEMA)
        )
        agg = Aggregate(union, [("d.sample_time", self._key())], [])
        plan = TopN(agg, [(self._key(), True)], 3)
        assert find_top_n_target(plan, "sample_time") is None

    def test_wrong_primary_key_rejected(self):
        union = UnionAll(
            [self._mount("a")], declared_output=list(self.SCHEMA)
        )
        other = ColumnRef("d.sample_value", DataType.FLOAT64)
        plan = TopN(union, [(other, True)], 3)
        assert find_top_n_target(plan, "sample_time") is None

    def test_foreign_interval_column_rejected(self):
        plan = self._target_plan(
            [self._mount("a", interval=(0, 10), interval_column="other")]
        )
        assert find_top_n_target(plan, "sample_time") is None

    def test_zero_count_and_empty_union_rejected(self):
        assert (
            find_top_n_target(
                self._target_plan([self._mount("a")], count=0), "sample_time"
            )
            is None
        )
        assert (
            find_top_n_target(self._target_plan([]), "sample_time") is None
        )

    def test_branch_hulls_intersect_span_and_interval(self):
        union = UnionAll(
            [
                self._mount("a", interval=(5, 100), interval_column="sample_time"),
                self._mount("b"),
            ],
            declared_output=list(self.SCHEMA),
        )
        spans = {"a": (0, 50), "b": (10, 20)}
        assert branch_hulls(union, spans.get) == [(5, 50), (10, 20)]


class TestTopNBranchMonitor:
    def _monitor(self, hulls, count=2, ascending=False, **kwargs):
        return TopNBranchMonitor(
            count=count,
            ascending=ascending,
            key="d.t",
            hulls=hulls,
            **kwargs,
        )

    def _batch(self, values):
        return ColumnBatch(
            ["d.t"], [Column.from_pylist(DataType.TIMESTAMP, values)]
        )

    def test_schedule_most_promising_first(self):
        hulls = [(0, 10), (20, 30), (5, 40)]
        assert self._monitor(hulls, ascending=True).schedule(3) == [0, 2, 1]
        assert self._monitor(hulls, ascending=False).schedule(3) == [2, 1, 0]
        # Defensive identity when branch count mismatches the hulls.
        assert self._monitor(hulls).schedule(2) == [0, 1]

    def test_no_skip_before_heap_fills(self):
        monitor = self._monitor([(0, 10), (90, 99)], count=3, ascending=True)
        monitor.observe(0, self._batch([1, 2]))
        assert not monitor.should_skip(1)  # only 2 of 3 candidates seen

    def test_strictly_worse_hull_skipped_ties_kept(self):
        monitor = self._monitor(
            [(50, 90), (10, 40), (10, 41), (95, 99)], ascending=False
        )
        monitor.observe(0, self._batch([90, 41, 60]))  # threshold = 60
        assert monitor.should_skip(1)  # hi=40 < 60: provably worse
        assert not monitor.should_skip(2) or monitor.hulls[2][1] < 60
        assert not monitor.should_skip(3)  # hi=99 could beat 60
        # Tie with the threshold itself is never skipped.
        tied = self._monitor([(50, 90), (0, 60)], ascending=False)
        tied.observe(0, self._batch([90, 60]))
        assert not tied.should_skip(1)

    def test_empty_hull_always_skipped(self):
        monitor = self._monitor([(5, 90), (10, 4)], count=1, ascending=True)
        monitor.observe(0, self._batch([7]))
        assert monitor.should_skip(1)

    def test_on_skip_fires_once(self):
        fired = []
        monitor = self._monitor(
            [(50, 90), (10, 20)], ascending=False, on_skip=fired.append
        )
        monitor.observe(0, self._batch([90, 80]))
        assert monitor.should_skip(1) and monitor.should_skip(1)
        assert fired == [1]

    def test_safe_audit(self):
        monitor = self._monitor([(50, 90), (10, 20)], ascending=False)
        assert monitor.safe()  # no skips: trivially sound
        monitor.observe(0, self._batch([90, 80]))
        assert monitor.should_skip(1)
        key = ColumnRef("d.t", DataType.TIMESTAMP)
        # Full answer, skipped hull strictly below its worst row: sound.
        monitor.note_result(key, self._batch([90, 80]))
        assert monitor.safe()
        # Short answer: unsound, the skipped branch might have filled it.
        monitor.note_result(key, self._batch([90]))
        assert not monitor.safe()
        # Tied answer: unsound, tie order could have preferred the branch.
        monitor.note_result(key, self._batch([90, 20]))
        assert not monitor.safe()


class TestMountPoolRelease:
    def test_release_queued_task_cancels_extraction(self):
        blocked = [("D", "slow-a.xseed"), ("D", "slow-b.xseed")]
        doomed = ("D", "doomed.xseed")
        extract = RecordingExtract(block_uris={uri for _, uri in blocked})
        pool = MountPool(extract, max_workers=2)
        try:
            pool.prefetch(blocked + [doomed])
            deadline = threading.Event()
            for _ in range(5000):
                if len(extract.calls) >= 2:
                    break
                deadline.wait(0.001)
            # Both workers are stuck; the third task is still queued.
            assert pool.release(*doomed) is True
            extract.unblock.set()
            for table_name, uri in blocked:
                pool.take(uri, table_name)
        finally:
            extract.unblock.set()
            pool.close()
        assert doomed[1] not in extract.calls

    def test_release_serial_pool_never_extracts(self):
        tasks = keys(3)
        extract = RecordingExtract()
        with MountPool(extract, max_workers=1) as pool:
            pool.prefetch(tasks)
            assert pool.release(*tasks[1]) is True
            for table_name, uri in (tasks[0], tasks[2]):
                pool.take(uri, table_name)
        assert extract.calls == [tasks[0][1], tasks[2][1]]

    def test_release_respects_single_flight_takers(self):
        """One of two takers renouncing must not cancel the other's take."""
        key = ("D", "shared.xseed")
        extract = RecordingExtract()
        with MountPool(extract, max_workers=1) as pool:
            pool.prefetch([key, key])
            assert pool.release(*key) is False  # the other taker remains
            assert pool.take(key[1], key[0]).batch.num_rows == 1

    def test_release_unknown_key_is_noop(self):
        extract = RecordingExtract()
        with MountPool(extract, max_workers=2) as pool:
            assert pool.release("D", "never-prefetched.xseed") is False

    def test_release_after_extraction_reports_false(self):
        tasks = keys(2)
        extract = RecordingExtract()
        with MountPool(extract, max_workers=2) as pool:
            pool.prefetch(tasks)
            pool.take(tasks[0][1], tasks[0][0])
            # Wait for the other worker to finish the second task too.
            for _ in range(5000):
                if len(extract.calls) == 2:
                    break
                threading.Event().wait(0.001)
            assert pool.release(*tasks[1]) is False


class TestSharedPoolClientRelease:
    def _scheduler(self):
        return MountScheduler(
            lambda uri, table, request=None: (_ for _ in ()).throw(
                AssertionError(f"unexpected extraction of {uri}")
            ),
            policy=SchedulerPolicy(batch_window_seconds=0.0),
            workers=0,
        )

    def test_release_withdraws_interest(self):
        scheduler = self._scheduler()
        client = scheduler.client()
        client.prefetch([("D", "a.xseed", None)])
        assert client.release("D", "a.xseed") is True
        assert scheduler.stats.withdrawn == 1
        assert scheduler.peek_next() is None

    def test_release_keeps_interest_while_takes_remain(self):
        scheduler = self._scheduler()
        client = scheduler.client()
        client.prefetch([("D", "a.xseed", None), ("D", "a.xseed", None)])
        assert client.release("D", "a.xseed") is False
        assert scheduler.stats.withdrawn == 0
        assert scheduler.peek_next() == ("D", "a.xseed")

    def test_release_unknown_key_is_noop(self):
        client = self._scheduler().client()
        assert client.release("D", "never.xseed") is False


class TestEndToEndEquivalence:
    def test_grid_byte_identical_to_full_sort(self, tiny_repo):
        """workers 1/4 x selective on/off x on_budget raise/partial: the
        pushed-down plan must answer exactly what sort-then-slice answers."""
        baseline = make_executor(tiny_repo, top_n_pushdown=False).execute(
            LATEST_SQL
        ).rows
        assert len(baseline) == 5
        for workers, selective, on_budget in itertools.product(
            (1, 4), (False, True), (ON_BUDGET_RAISE, ON_BUDGET_PARTIAL)
        ):
            executor = make_executor(
                tiny_repo,
                mount_workers=workers,
                selective_mounts=selective,
                budget=QueryBudget(
                    max_mount_bytes=10**12, on_budget=on_budget
                ),
            )
            rows = executor.execute(LATEST_SQL).rows
            assert rows == baseline, (
                f"answer drifted at workers={workers}, "
                f"selective={selective}, on_budget={on_budget}"
            )

    def test_early_termination_skips_stale_branches(self, tiny_repo):
        """Latest-K descending: every day-010 file's hull is provably below
        the threshold once one day-011 file is in, so half the repository is
        never mounted — and the answer is unchanged."""
        executor = make_executor(tiny_repo)
        result = executor.execute(LATEST_SQL)
        stats = executor.mounts.stats
        assert stats.early_terminated_branches >= 1
        assert stats.early_cancelled_mounts >= 1
        assert stats.mounts < len(tiny_repo.uris())
        baseline = make_executor(tiny_repo, top_n_pushdown=False)
        assert result.rows == baseline.execute(LATEST_SQL).rows
        assert baseline.mounts.stats.early_terminated_branches == 0

    def test_early_termination_under_pooled_workers(self, tiny_repo):
        executor = make_executor(tiny_repo, mount_workers=4)
        result = executor.execute(LATEST_SQL)
        assert executor.mounts.stats.early_terminated_branches >= 1
        baseline = make_executor(tiny_repo, top_n_pushdown=False)
        assert result.rows == baseline.execute(LATEST_SQL).rows

    def test_ascending_limit_equivalence(self, tiny_repo):
        sql = LATEST_SQL.replace("DESC", "ASC")
        pushed = make_executor(tiny_repo).execute(sql).rows
        full = make_executor(tiny_repo, top_n_pushdown=False).execute(sql).rows
        assert pushed == full

    def test_covering_interval_mounts_whole_file(self, tiny_repo):
        """A pruning interval spanning a file's whole hull makes the seek
        ladder pure overhead: the span-aware service mounts it whole."""
        executor = make_executor(tiny_repo)
        sql = (
            "SELECT COUNT(*) AS n FROM F JOIN D ON F.uri = D.uri "
            "WHERE D.sample_time >= '2010-01-01T00:00:00.000' "
            "AND D.sample_time < '2010-02-01T00:00:00.000'"
        )
        result = executor.execute(sql)
        assert executor.mounts.stats.whole_file_requests > 0
        full = make_executor(tiny_repo, selective_mounts=False)
        assert result.rows == full.execute(sql).rows


@st.composite
def topn_case(draw):
    n = draw(st.integers(min_value=0, max_value=50))
    primary = draw(
        st.lists(st.integers(-4, 4), min_size=n, max_size=n)
    )
    secondary = draw(
        st.lists(
            st.floats(allow_nan=True, allow_infinity=False, width=32),
            min_size=n,
            max_size=n,
        )
    )
    ascending = [draw(st.booleans()), draw(st.booleans())]
    count = draw(st.integers(min_value=0, max_value=8))
    chunk_rows = draw(st.integers(min_value=1, max_value=7))
    return primary, secondary, ascending, count, chunk_rows


class TestTopNKernel:
    @settings(max_examples=200, deadline=None)
    @given(topn_case())
    def test_matches_full_sort_prefix(self, case):
        primary, secondary, ascending, count, chunk_rows = case
        columns = [
            Column.from_pylist(DataType.INT64, primary),
            Column.from_pylist(DataType.FLOAT64, secondary),
        ]
        expected = sort_indices(columns, ascending)[:count]
        actual = top_n_indices(
            columns, ascending, count, chunk_rows=chunk_rows
        )
        np.testing.assert_array_equal(actual, expected)

    def test_stable_ties_match_row_order(self):
        column = Column.from_pylist(DataType.INT64, [5, 1, 5, 1, 5])
        got = top_n_indices([column], [True], 3, chunk_rows=2)
        np.testing.assert_array_equal(got, [1, 3, 0])

    def test_count_beyond_input_returns_everything(self):
        column = Column.from_pylist(DataType.INT64, [3, 1, 2])
        got = top_n_indices([column], [True], 10)
        np.testing.assert_array_equal(got, [1, 2, 0])

    def test_invalid_arguments_rejected(self):
        column = Column.from_pylist(DataType.INT64, [1])
        with pytest.raises(ValueError):
            top_n_indices([], [True], 1)
        with pytest.raises(ValueError):
            top_n_indices([column], [True], -1)
        with pytest.raises(ValueError):
            top_n_indices([column], [True], 1, chunk_rows=0)
