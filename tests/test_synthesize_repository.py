"""Tests for waveform synthesis and the repository abstraction."""

import numpy as np
import pytest

from repro.db.errors import IngestError
from repro.mseed import (
    FileRepository,
    RepositorySpec,
    WaveformSpec,
    generate_repository,
    read_file_metadata,
    synthesize_waveform,
)
from repro.mseed.synthesize import build_records, day_of_year, file_relpath


SPEC = RepositorySpec(
    stations=("ISK", "ANK"),
    channels=("BHE",),
    days=2,
    sample_rate=0.02,
    samples_per_record=600,
)


class TestSynthesizeWaveform:
    def test_deterministic_under_rng_seed(self):
        spec = WaveformSpec()
        a = synthesize_waveform(np.random.default_rng(5), 2000, 1.0, spec)
        b = synthesize_waveform(np.random.default_rng(5), 2000, 1.0, spec)
        assert np.array_equal(a, b)

    def test_int32_and_bounded(self):
        wave = synthesize_waveform(
            np.random.default_rng(0), 5000, 1.0, WaveformSpec()
        )
        assert wave.dtype == np.int32
        assert np.abs(wave.astype(np.int64)).max() <= 2**30

    def test_events_add_energy(self):
        quiet = WaveformSpec(events_per_hour=0.0)
        busy = WaveformSpec(events_per_hour=50.0)
        rng_q = np.random.default_rng(9)
        rng_b = np.random.default_rng(9)
        wave_q = synthesize_waveform(rng_q, 7200, 1.0, quiet)
        wave_b = synthesize_waveform(rng_b, 7200, 1.0, busy)
        assert wave_b.astype(np.float64).std() > 2 * wave_q.astype(np.float64).std()


class TestBuildRecords:
    def test_deterministic_per_identity(self):
        a = build_records(SPEC, "ISK", "BHE", 0)
        b = build_records(SPEC, "ISK", "BHE", 0)
        assert len(a) == len(b)
        for ra, rb in zip(a, b):
            assert ra.header == rb.header
            assert np.array_equal(ra.samples, rb.samples)

    def test_different_identities_differ(self):
        a = build_records(SPEC, "ISK", "BHE", 0)
        b = build_records(SPEC, "ANK", "BHE", 0)
        assert not np.array_equal(a[0].samples, b[0].samples)

    def test_record_chunking(self):
        records = build_records(SPEC, "ISK", "BHE", 0)
        total = int(86_400 * SPEC.sample_rate)
        assert sum(r.header.nsamples for r in records) == total
        assert all(
            r.header.nsamples == SPEC.samples_per_record for r in records[:-1]
        )

    def test_record_times_contiguous(self):
        records = build_records(SPEC, "ISK", "BHE", 0)
        step = 1_000_000 / SPEC.sample_rate
        for prev, nxt in zip(records, records[1:]):
            assert nxt.header.start_time == prev.header.end_time + step

    def test_day_of_year(self):
        assert day_of_year("2010-01-10", 0) == (2010, 10)
        assert day_of_year("2010-12-31", 1) == (2011, 1)

    def test_file_relpath_layout(self):
        rel = file_relpath(SPEC, "ISK", "BHE", 0)
        assert rel == "2010/KO.ISK/KO.ISK..BHE.2010.010.xseed"


class TestRepository:
    @pytest.fixture(scope="class")
    def repo(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("repo")
        generate_repository(root, SPEC)
        return FileRepository(root)

    def test_file_count(self, repo):
        assert len(repo) == SPEC.file_count == 4

    def test_uris_sorted_and_relative(self, repo):
        uris = repo.uris()
        assert uris == sorted(uris)
        assert all(not u.startswith("/") for u in uris)

    def test_path_of_roundtrip(self, repo):
        uri = repo.uris()[0]
        meta, _ = read_file_metadata(repo.path_of(uri))
        assert meta.station in SPEC.stations

    def test_unknown_uri(self, repo):
        with pytest.raises(IngestError):
            repo.path_of("2010/XX.YY/nothing.xseed")

    def test_escaping_uri_rejected(self, repo):
        with pytest.raises(IngestError):
            repo.path_of("../outside.xseed")

    def test_total_bytes(self, repo):
        total = repo.total_bytes()
        assert total == sum(repo.size_of(u) for u in repo.uris())
        assert total > 0

    def test_missing_root_rejected(self, tmp_path):
        with pytest.raises(IngestError):
            FileRepository(tmp_path / "missing")

    def test_iteration(self, repo):
        assert list(iter(repo)) == repo.uris()
