"""Tests for the exploration layer: detection, workloads, sessions."""

import numpy as np
import pytest

from repro.core import TwoStageExecutor
from repro.db.sql.parser import parse_sql
from repro.explore import (
    ExplorationSession,
    detect_events,
    make_query1,
    make_query2,
    random_exploration,
    sta_lta,
    sweep_queries,
)
from repro.ingest import RepositoryBinding


class TestStaLta:
    def synthetic_burst(self):
        rng = np.random.default_rng(0)
        signal = rng.normal(0, 1.0, 2000)
        signal[1200:1300] += 40.0 * np.exp(-np.arange(100) / 30.0)
        return signal

    def test_ratio_peaks_at_burst(self):
        ratio = sta_lta(self.synthetic_burst(), 10, 200)
        assert ratio[:200].max() == 0.0  # warm-up region
        assert np.argmax(ratio) >= 1200

    def test_detect_events_finds_burst(self):
        events = detect_events(self.synthetic_burst(), 10, 200,
                               on_threshold=5.0)
        assert len(events) == 1
        assert 1190 <= events[0].start_index <= 1310
        assert events[0].peak_ratio > 5.0

    def test_quiet_signal_no_events(self):
        rng = np.random.default_rng(1)
        events = detect_events(rng.normal(0, 1.0, 2000), 10, 200,
                               on_threshold=8.0)
        assert events == []

    def test_event_open_at_end(self):
        signal = np.ones(500) * 0.1
        signal[450:] = 100.0
        events = detect_events(signal, 10, 100, on_threshold=4.0)
        assert events and events[-1].end_index == 499

    def test_window_validation(self):
        with pytest.raises(ValueError):
            sta_lta(np.ones(10), 5, 5)
        with pytest.raises(ValueError):
            sta_lta(np.ones(10), 0, 5)


class TestQueryTemplates:
    def test_query1_parses_and_mentions_predicates(self):
        sql = make_query1(
            "ISK", "BHE", "2010-01-12",
            "2010-01-12T22:15:00", "2010-01-12T22:15:02",
        )
        stmt = parse_sql(sql)
        assert [j.table.name for j in stmt.joins] == ["R", "D"]
        assert "AVG" in sql.upper()
        assert "'ISK'" in sql and "'BHE'" in sql

    def test_query2_selects_waveform(self):
        sql = make_query2(
            "ISK", "2010-01-12",
            "2010-01-12T22:00:00", "2010-01-12T22:30:00",
        )
        stmt = parse_sql(sql)
        assert len(stmt.items) == 2
        assert "channel" not in sql.lower().split("where")[1].split("and")[0]

    def test_templates_run_on_engine(self, executor):
        sql = make_query1(
            "ISK", "BHE", "2010-01-10",
            "2010-01-10T10:00:00", "2010-01-10T11:00:00",
        )
        outcome = executor.execute(sql)
        assert outcome.result.num_rows == 1


class TestSweepQueries:
    def test_fraction_zero_matches_nothing(self, executor):
        queries = sweep_queries(
            ["ISK", "ANK"], ["BHE", "BHZ"], "2010-01-10",
            "2010-01-10T10:00:00", "2010-01-10T11:00:00",
            fractions=[0.0],
        )
        outcome = executor.execute(queries[0][1])
        assert outcome.breakpoint.n_files == 0

    def test_fraction_one_touches_all_pairs(self, executor, tiny_repo):
        queries = sweep_queries(
            ["ISK", "ANK"], ["BHE", "BHZ"], "2010-01-10",
            "2010-01-10T10:00:00", "2010-01-10T11:00:00",
            fractions=[1.0],
        )
        outcome = executor.execute(queries[0][1])
        # 4 station-channel pairs × the day's file
        assert outcome.breakpoint.n_files == 4

    def test_fractions_monotone_in_files(self, executor):
        queries = sweep_queries(
            ["ISK", "ANK"], ["BHE", "BHZ"], "2010-01-10",
            "2010-01-10T10:00:00", "2010-01-10T11:00:00",
            fractions=[0.0, 0.5, 1.0],
        )
        counts = [
            executor.execute(sql).breakpoint.n_files for _, sql in queries
        ]
        assert counts == sorted(counts)


class TestRandomExploration:
    def test_deterministic(self):
        a = random_exploration(["ISK"], ["BHE"], "2010-01-10", 2, 10, seed=3)
        b = random_exploration(["ISK"], ["BHE"], "2010-01-10", 2, 10, seed=3)
        assert [s.sql for s in a] == [s.sql for s in b]

    def test_step_count(self):
        steps = random_exploration(["ISK"], ["BHE"], "2010-01-10", 2, 7)
        assert len(steps) == 7

    def test_all_queries_parse(self):
        for step in random_exploration(
            ["ISK", "ANK"], ["BHE", "BHZ"], "2010-01-10", 2, 20
        ):
            parse_sql(step.sql)

    def test_first_step_is_quick_look(self):
        steps = random_exploration(["ISK"], ["BHE"], "2010-01-10", 2, 3)
        assert steps[0].kind.value == "quick_look"


class TestSession:
    def test_history_and_accounting(self, ali_db, tiny_repo):
        executor = TwoStageExecutor(ali_db, RepositoryBinding(tiny_repo))
        session = ExplorationSession(executor, setup_seconds=1.5)
        value = session.quick_look("ISK", "BHE", "2010-01-10")
        assert isinstance(value, float)
        result = session.zoom(
            "ISK", "2010-01-10",
            "2010-01-10T10:00:00", "2010-01-10T10:30:00",
        )
        assert result.num_rows > 0
        assert len(session.history) == 2
        assert session.history[0].files_mounted >= 1
        assert session.total_seconds > session.setup_seconds
        assert session.data_to_insight_seconds >= 1.5
        report = session.report()
        assert "data-to-insight" in report and "quick look" in report

    def test_session_over_plain_database(self, ei_db):
        session = ExplorationSession(ei_db)
        avg = session.average(
            "ISK", "BHE", "2010-01-10",
            "2010-01-10T10:00:00", "2010-01-10T11:00:00",
        )
        assert isinstance(avg, float)
        assert session.history[0].files_mounted == 0

    def test_same_answers_through_both_engines(self, ei_db, executor):
        args = (
            "ISK", "BHE", "2010-01-10",
            "2010-01-10T10:00:00", "2010-01-10T11:00:00",
        )
        ei_session = ExplorationSession(ei_db)
        ali_session = ExplorationSession(executor)
        assert ei_session.average(*args) == pytest.approx(
            ali_session.average(*args)
        )
