"""The plan verifier: rejects hand-built invalid plans, passes real ones.

Covers the acceptance criteria of the static-analysis layer: unresolved
columns, type drift, union-branch schema mismatches, metadata-only
violations in ``Qf``, result-scan arity errors — each raising
:class:`PlanInvariantError` naming the offending pass — plus the
whole-pipeline checks (EXPERIMENTS workload queries verify cleanly, and
results are identical with verification on and off).
"""

from __future__ import annotations

import pytest

from repro.core import TwoStageExecutor
from repro.core.decompose import QF_TAG, Decomposition
from repro.core.verify import verify_ali_rewrite, verify_decomposition
from repro.db import Database, PlanInvariantError
from repro.db.expr import ColumnRef, Comparison, Literal
from repro.db.plan import verify as plan_verify
from repro.db.plan.logical import (
    Join,
    Mount,
    Project,
    ResultScan,
    Scan,
    Select,
    UnionAll,
)
from repro.db.plan.verify import (
    verify_enabled_default,
    verify_pass,
    verify_physical,
    verify_plan,
)
from repro.db.plan.physical import PResultScan, PTableScan
from repro.db.types import DataType
from repro.ingest import RepositoryBinding

from conftest import QUERY1, QUERY2

STR = DataType.STRING
I64 = DataType.INT64


def _scan(alias: str = "f", cols: list | None = None) -> Scan:
    cols = cols or [(f"{alias}.uri", STR), (f"{alias}.station", STR)]
    return Scan("F", alias, cols)


def _eq(key: str, value: str, dtype: DataType = STR) -> Comparison:
    return Comparison("=", ColumnRef(key, dtype), Literal(value, dtype))


# -- hand-built invalid plans --------------------------------------------------


def test_unresolved_column_rejected():
    plan = Select(_scan(), _eq("f.channel", "BHE"))
    with pytest.raises(PlanInvariantError) as err:
        verify_plan(plan, "push-down-selections")
    assert err.value.pass_name == "push-down-selections"
    assert "f.channel" in str(err.value)
    assert "push-down-selections" in str(err.value)


def test_column_type_drift_rejected():
    # The predicate believes f.station is INT64; the schema says STRING.
    plan = Select(
        _scan(),
        Comparison("=", ColumnRef("f.station", I64), Literal(1, I64)),
    )
    with pytest.raises(PlanInvariantError, match="int64"):
        verify_plan(plan, "bind")


def test_union_branch_schema_mismatch_rejected():
    narrow = Scan("F", "f", [("f.uri", STR)])
    wide = Scan("F", "f", [("f.uri", STR), ("f.station", STR)])
    union = UnionAll([narrow, wide], declared_output=[("f.uri", STR)])
    with pytest.raises(PlanInvariantError, match="union branch 1"):
        verify_plan(union, "ali-rewrite")


def test_union_branch_dtype_mismatch_rejected():
    a = Scan("F", "f", [("f.uri", STR)])
    b = Scan("F", "f", [("f.uri", I64)])
    union = UnionAll([a, b], declared_output=[("f.uri", STR)])
    with pytest.raises(PlanInvariantError, match="drifted"):
        verify_plan(union, "ali-rewrite")


def test_duplicate_join_keys_rejected():
    left = _scan("f")
    right = _scan("f")  # same alias on both sides → duplicate keys
    with pytest.raises(PlanInvariantError, match="duplicate output key"):
        verify_plan(Join(left, right, None), "bind")


def test_mount_predicate_outside_alias_rejected():
    mount = Mount(
        uri="2010/x.xseed",
        table_name="D",
        alias="d",
        output=[("d.sample_value", DataType.FLOAT64)],
        predicate=_eq("r.uri", "2010/x.xseed"),
    )
    with pytest.raises(PlanInvariantError, match="outside"):
        verify_plan(mount, "ali-rewrite")


def _timed_mount(interval, interval_column="sample_time"):
    """A Mount whose fused predicate bounds d.sample_time to [100, 500]."""
    time_ref = ColumnRef("d.sample_time", DataType.TIMESTAMP)
    predicate = Comparison(
        ">=", time_ref, Literal(100, DataType.TIMESTAMP)
    )
    upper = Comparison("<=", time_ref, Literal(500, DataType.TIMESTAMP))
    from repro.db.expr import BoolOp

    return Mount(
        uri="2010/x.xseed",
        table_name="D",
        alias="d",
        output=[
            ("d.sample_time", DataType.TIMESTAMP),
            ("d.sample_value", DataType.FLOAT64),
        ],
        predicate=BoolOp("and", [predicate, upper]),
        interval=interval,
        interval_column=interval_column,
    )


def test_mount_interval_narrower_than_hull_rejected():
    """The pruning interval must cover the fused predicate's hull: a
    narrower one would let extraction skip records the predicate selects."""
    with pytest.raises(PlanInvariantError, match="narrower"):
        verify_plan(_timed_mount((200, 500)), "ali-rewrite")
    with pytest.raises(PlanInvariantError, match="narrower"):
        verify_plan(_timed_mount((100, 400)), "ali-rewrite")


def test_mount_interval_covering_hull_accepted():
    verify_plan(_timed_mount((100, 500)), "ali-rewrite")
    verify_plan(_timed_mount((0, 1000)), "ali-rewrite")  # wider is safe


def test_mount_interval_without_column_rejected():
    with pytest.raises(PlanInvariantError, match="interval_column"):
        verify_plan(_timed_mount((100, 500), interval_column=None),
                    "ali-rewrite")


def test_pass_schema_change_rejected():
    before = _scan("f")
    after = Scan("F", "f", [("f.uri", STR)])  # dropped a column
    with pytest.raises(PlanInvariantError, match="output schema"):
        verify_pass(before, after, "prune-columns")


def test_verify_pass_allows_reordered_columns():
    before = _scan("f")
    after = Scan("F", "f", [("f.station", STR), ("f.uri", STR)])
    assert verify_pass(before, after, "metadata-first-join-order") is after


def test_physical_output_mismatch_rejected():
    logical = _scan("f")
    physical = PTableScan("F", "f", [("uri", "f.uri", STR)])
    with pytest.raises(PlanInvariantError, match="physical plan produces"):
        verify_physical(physical, logical)


def test_physical_matching_output_accepted():
    logical = Scan("F", "f", [("f.uri", STR)])
    physical = PTableScan("F", "f", [("uri", "f.uri", STR)])
    assert verify_physical(physical, logical) is physical


# -- decomposition invariants --------------------------------------------------


def _classify(table_name: str) -> bool:
    return table_name.upper() in ("F", "R")


def test_qf_with_actual_scan_rejected():
    qf = Scan("D", "d", [("d.uri", STR)])  # D is actual data
    qs = ResultScan(QF_TAG, [("d.uri", STR)])
    decomposition = Decomposition(
        plan=qs, qf=qf, qs=qs, metadata_only=False
    )
    with pytest.raises(PlanInvariantError) as err:
        verify_decomposition(decomposition, _classify)
    assert err.value.pass_name == "decompose"
    assert "metadata" in str(err.value)


def test_result_scan_arity_mismatch_rejected():
    qf = _scan("f")  # produces 2 columns
    qs = ResultScan(QF_TAG, [("f.uri", STR)])  # expects only 1
    decomposition = Decomposition(
        plan=qs, qf=qf, qs=qs, metadata_only=False
    )
    with pytest.raises(PlanInvariantError, match="result-scan arity"):
        verify_decomposition(decomposition, _classify)


def test_qs_ignoring_stage1_result_rejected():
    qf = _scan("f")
    qs = Scan("D", "d", [("d.uri", STR)])  # never reads the qf result
    decomposition = Decomposition(
        plan=qs, qf=qf, qs=qs, metadata_only=False
    )
    with pytest.raises(PlanInvariantError, match="never reads"):
        verify_decomposition(decomposition, _classify)


def test_metadata_only_with_stage2_rejected():
    qf = _scan("f")
    decomposition = Decomposition(
        plan=qf, qf=qf, qs=qf, metadata_only=True
    )
    with pytest.raises(PlanInvariantError, match="metadata-only"):
        verify_decomposition(decomposition, _classify)


def test_valid_decomposition_accepted(executor):
    decomposition = executor.prepare(QUERY1)
    assert (
        verify_decomposition(
            decomposition, executor.db.catalog.is_metadata_table
        )
        is decomposition
    )


def test_ali_rewrite_schema_change_rejected():
    scan = Scan("D", "d", [("d.uri", STR), ("d.sample_value", DataType.FLOAT64)])
    rewritten = UnionAll([], declared_output=[("d.uri", STR)])
    with pytest.raises(PlanInvariantError, match="rule"):
        verify_ali_rewrite(scan, rewritten)


def test_empty_union_with_declared_output_accepted():
    scan = Scan("D", "d", [("d.uri", STR)])
    rewritten = UnionAll([], declared_output=[("d.uri", STR)])
    assert verify_ali_rewrite(scan, rewritten) is rewritten


# -- env flag plumbing ---------------------------------------------------------


@pytest.mark.parametrize(
    "value,expected",
    [("1", True), ("true", True), ("on", True),
     ("", False), ("0", False), ("false", False), ("off", False)],
)
def test_env_flag_parsing(monkeypatch, value, expected):
    monkeypatch.setenv(plan_verify.ENV_FLAG, value)
    assert verify_enabled_default() is expected


def test_env_flag_sets_database_default(monkeypatch):
    monkeypatch.setenv(plan_verify.ENV_FLAG, "1")
    assert Database().verify_plans is True
    monkeypatch.delenv(plan_verify.ENV_FLAG)
    assert Database().verify_plans is False
    assert Database(verify_plans=True).verify_plans is True


def test_executor_inherits_database_setting(ali_db, tiny_repo):
    db = Database(verify_plans=True)
    # fresh db has no metadata; only checking flag plumbing here
    executor = TwoStageExecutor(db, RepositoryBinding(tiny_repo))
    assert executor.verify_plans is True
    executor_off = TwoStageExecutor(
        db, RepositoryBinding(tiny_repo), verify_plans=False
    )
    assert executor_off.verify_plans is False


# -- whole-pipeline checks -----------------------------------------------------


METADATA_QUERY = (
    "SELECT F.station, COUNT(*) AS files FROM F "
    "GROUP BY F.station ORDER BY F.station"
)


@pytest.mark.parametrize("sql", [QUERY1, QUERY2, METADATA_QUERY])
def test_workload_verifies_cleanly(ali_db, tiny_repo, sql):
    executor = TwoStageExecutor(
        ali_db, RepositoryBinding(tiny_repo), verify_plans=True
    )
    outcome = executor.execute(sql)
    assert outcome.result.num_rows >= 1


@pytest.mark.parametrize("sql", [QUERY1, QUERY2, METADATA_QUERY])
def test_results_identical_with_verification(ali_db, tiny_repo, sql):
    on = TwoStageExecutor(
        ali_db, RepositoryBinding(tiny_repo), verify_plans=True
    ).execute(sql)
    off = TwoStageExecutor(
        ali_db, RepositoryBinding(tiny_repo), verify_plans=False
    ).execute(sql)
    assert on.result.rows() == off.result.rows()
    assert on.result.names == off.result.names


def test_ei_pipeline_verifies_cleanly(tiny_repo):
    from repro.ingest import eager_ingest

    db = Database(verify_plans=True)
    eager_ingest(db, tiny_repo)
    result = db.execute(QUERY1)
    assert result.num_rows == 1


def test_binder_output_verifies(ali_db):
    plan = ali_db.bind_sql(QUERY2)
    assert verify_plan(plan, "bind") is plan
    assert isinstance(plan, (Project, type(plan)))


# -- property test: random workload queries are verifier-clean ----------------


from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

_HOUR_US = 3_600 * 1_000_000
_DAY0 = "2010-01-10T00:00:00.000"


def _window(day: int, start_hour: int, length_hours: int) -> tuple[str, str]:
    from repro.db.types import format_timestamp, parse_timestamp

    base = parse_timestamp(_DAY0) + day * 24 * _HOUR_US
    lo = base + start_hour * _HOUR_US
    hi = lo + length_hours * _HOUR_US
    return format_timestamp(lo), format_timestamp(hi)


@st.composite
def random_queries(draw):
    station = draw(st.sampled_from(["ISK", "ANK"]))
    channel = draw(st.sampled_from(["BHE", "BHZ", None]))
    agg = draw(st.sampled_from(["AVG", "SUM", "COUNT", "MIN", "MAX", None]))
    day = draw(st.integers(min_value=0, max_value=1))
    start_hour = draw(st.integers(min_value=0, max_value=20))
    length = draw(st.integers(min_value=1, max_value=3))
    lo, hi = _window(day, start_hour, length)
    channel_pred = f"AND F.channel = '{channel}' " if channel else ""
    select = (
        f"{agg}(D.sample_value) AS v" if agg else "D.sample_time, D.sample_value"
    )
    return (
        f"SELECT {select} "
        "FROM F JOIN R ON F.uri = R.uri "
        "JOIN D ON R.uri = D.uri AND R.record_id = D.record_id "
        f"WHERE F.station = '{station}' {channel_pred}"
        f"AND D.sample_time > '{lo}' AND D.sample_time < '{hi}'"
    )


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(sql=random_queries())
def test_random_join_queries_verify_and_agree(ali_db, tiny_repo, sql):
    """Random metadata/actual joins: verifier-clean at every pass, and the
    answer does not depend on whether verification runs."""
    on = TwoStageExecutor(
        ali_db, RepositoryBinding(tiny_repo), verify_plans=True
    ).execute(sql)
    off = TwoStageExecutor(
        ali_db, RepositoryBinding(tiny_repo), verify_plans=False
    ).execute(sql)
    assert on.result.rows() == off.result.rows()
    assert on.result.names == off.result.names
