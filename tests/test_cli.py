"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture()
def repo_dir(tmp_path):
    root = tmp_path / "repo"
    code = main([
        "generate", "--root", str(root),
        "--stations", "ISK,ANK", "--channels", "BHE",
        "--days", "1", "--sample-rate", "0.02",
        "--samples-per-record", "400",
    ])
    assert code == 0
    return root


class TestGenerateInspect:
    def test_generate_reports(self, tmp_path, capsys):
        code = main([
            "generate", "--root", str(tmp_path / "r"),
            "--stations", "ISK,ANK", "--channels", "BHE",
            "--days", "1", "--sample-rate", "0.02",
            "--samples-per-record", "400",
        ])
        assert code == 0
        assert "generated 2 files" in capsys.readouterr().out

    def test_inspect(self, repo_dir, capsys):
        assert main(["inspect", "--repo", str(repo_dir)]) == 0
        out = capsys.readouterr().out
        assert "files      : 2" in out
        assert "ISK" in out and "ANK" in out


class TestLoadQuery:
    def test_lazy_load_and_query(self, repo_dir, tmp_path, capsys):
        db_dir = tmp_path / "db"
        assert main([
            "load", "--repo", str(repo_dir), "--db", str(db_dir),
            "--mode", "lazy",
        ]) == 0
        assert main([
            "query", "--db", str(db_dir),
            "SELECT station, COUNT(*) FROM F GROUP BY station ORDER BY station",
        ]) == 0
        out = capsys.readouterr().out
        assert "ISK" in out and "2 rows" in out

    def test_eager_load_and_query(self, repo_dir, tmp_path, capsys):
        db_dir = tmp_path / "db"
        assert main([
            "load", "--repo", str(repo_dir), "--db", str(db_dir),
            "--mode", "eager",
        ]) == 0
        assert main([
            "query", "--db", str(db_dir), "SELECT COUNT(*) FROM D",
        ]) == 0
        out = capsys.readouterr().out
        assert "3456" in out  # 2 files × 1728 samples

    def test_two_stage_query_against_repo(self, repo_dir, capsys):
        assert main([
            "query", "--repo", str(repo_dir), "--breakpoint",
            "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri "
            "WHERE F.station = 'ISK'",
        ]) == 0
        out = capsys.readouterr().out
        assert "file(s) of interest" in out
        assert "1 file(s) mounted" in out
        assert "1728" in out

    def test_explain(self, repo_dir, capsys):
        assert main([
            "query", "--repo", str(repo_dir), "--explain",
            "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri "
            "WHERE F.station = 'ISK'",
        ]) == 0
        out = capsys.readouterr().out
        assert "[Qf]" in out
        assert "Scan(D)" in out

    def test_sql_error_is_reported_not_raised(self, repo_dir, capsys):
        code = main(["query", "--repo", str(repo_dir), "SELEC oops"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_budget_raise_reports_error(self, repo_dir, capsys):
        code = main([
            "query", "--repo", str(repo_dir), "--max-mount-bytes", "1",
            "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri",
        ])
        assert code == 1
        err = capsys.readouterr().err
        assert "error:" in err and "byte budget" in err

    def test_budget_partial_warns_and_answers(self, repo_dir, capsys):
        code = main([
            "query", "--repo", str(repo_dir),
            "--max-mount-bytes", "1", "--on-budget", "partial",
            "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "1 rows" in captured.out
        assert "answer truncated" in captured.err

    def test_deadline_flag_accepted(self, repo_dir, capsys):
        # A generous deadline: the query completes untruncated.
        code = main([
            "query", "--repo", str(repo_dir), "--deadline-seconds", "60",
            "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri",
        ])
        assert code == 0
        assert "truncated" not in capsys.readouterr().err


class TestBench:
    def test_bench_tiny(self, capsys):
        assert main(["bench", "--scale", "tiny", "--runs", "1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Figure 3" in out
        assert "log-scale" in out
