"""Tests for format extractors, the registry, and the two ingestion paths."""

import numpy as np
import pytest

from repro.db import Database
from repro.db.errors import IngestError
from repro.ingest import (
    CsvExtractor,
    FormatRegistry,
    XSeedExtractor,
    default_registry,
    eager_ingest,
    lazy_ingest_metadata,
    write_csv_timeseries,
)
from repro.ingest.schema import ACTUAL_TABLE, FILE_TABLE, RECORD_TABLE, ensure_schema
from repro.mseed import read_records


class TestRegistry:
    def test_default_registry_knows_both_formats(self):
        registry = default_registry()
        assert registry.known_suffixes() == [".tscsv", ".xseed"]

    def test_dispatch_by_suffix(self):
        registry = default_registry()
        assert isinstance(registry.for_path("a/b/file.xseed"), XSeedExtractor)
        assert isinstance(registry.for_path("w.tscsv"), CsvExtractor)

    def test_unknown_suffix(self):
        with pytest.raises(IngestError):
            default_registry().for_path("file.hdf5")

    def test_suffix_validation(self):
        registry = FormatRegistry()

        class Bad:
            format_name = "bad"
            suffix = "noleadingdot"

            def extract_metadata(self, path, uri):
                raise NotImplementedError

            def mount(self, path, uri):
                raise NotImplementedError

        with pytest.raises(IngestError):
            registry.register(Bad())


class TestXSeedExtractor:
    def test_metadata_matches_mount(self, tiny_repo):
        extractor = XSeedExtractor()
        uri = tiny_repo.uris()[0]
        path = tiny_repo.path_of(uri)
        extracted = extractor.extract_metadata(path, uri)
        mounted = extractor.mount(path, uri)
        assert extracted.file_row.nsamples == mounted.num_rows
        assert extracted.file_row.uri == uri
        assert len(extracted.record_rows) == extracted.file_row.nrecords

    def test_mount_matches_direct_decode(self, tiny_repo):
        extractor = XSeedExtractor()
        uri = tiny_repo.uris()[0]
        path = tiny_repo.path_of(uri)
        mounted = extractor.mount(path, uri)
        records = read_records(path)
        direct = np.concatenate([r.samples for r in records]).astype(np.float64)
        assert np.array_equal(mounted.sample_value, direct)
        assert mounted.record_id[0] == 0
        assert mounted.record_id[-1] == len(records) - 1

    def test_sample_times_monotonic_within_record(self, tiny_repo):
        extractor = XSeedExtractor()
        uri = tiny_repo.uris()[0]
        mounted = extractor.mount(tiny_repo.path_of(uri), uri)
        first = mounted.record_id == 0
        times = mounted.sample_time[first]
        assert np.all(np.diff(times) > 0)


class TestCsvExtractor:
    def write(self, tmp_path, n=10, rate=0.5):
        path = tmp_path / "w.tscsv"
        values = np.linspace(0.0, 1.0, n)
        write_csv_timeseries(
            path, "WX", "AMS", "", "TMP", rate, 1_000_000, values
        )
        return path, values

    def test_metadata_only(self, tmp_path):
        path, values = self.write(tmp_path)
        extracted = CsvExtractor().extract_metadata(path, "w.tscsv")
        assert extracted.file_row.station == "AMS"
        assert extracted.file_row.nsamples == len(values)
        assert len(extracted.record_rows) == 1
        assert extracted.record_rows[0].sample_rate == 0.5

    def test_mount_roundtrip(self, tmp_path):
        path, values = self.write(tmp_path)
        mounted = CsvExtractor().mount(path, "w.tscsv")
        assert np.allclose(mounted.sample_value, values)
        assert mounted.sample_time[0] == 1_000_000
        assert np.all(np.diff(mounted.sample_time) == 2_000_000)

    def test_missing_header_fields(self, tmp_path):
        path = tmp_path / "bad.tscsv"
        path.write_text("# station=A\nt_us,value\n1,2\n")
        with pytest.raises(IngestError):
            CsvExtractor().extract_metadata(path, "bad.tscsv")

    def test_sample_count_mismatch(self, tmp_path):
        path, _ = self.write(tmp_path, n=5)
        text = path.read_text().rstrip().rsplit("\n", 1)[0] + "\n"
        path.write_text(text)  # drop one body row
        with pytest.raises(IngestError):
            CsvExtractor().mount(path, "w.tscsv")


class TestEagerIngest:
    def test_counts(self, tiny_repo, ei_db):
        f = ei_db.catalog.table(FILE_TABLE)
        r = ei_db.catalog.table(RECORD_TABLE)
        d = ei_db.catalog.table(ACTUAL_TABLE)
        assert f.num_rows == len(tiny_repo)
        assert r.num_rows == sum(
            row for row in f.batch.column("nrecords").to_pylist()
        )
        assert d.num_rows == sum(f.batch.column("nsamples").to_pylist())

    def test_indexes_built(self, ei_db):
        assert ei_db.index_nbytes() > 0
        assert ei_db.catalog.index_for(FILE_TABLE, ("uri",)) is not None
        assert (
            ei_db.catalog.index_for(RECORD_TABLE, ("uri", "record_id"))
            is not None
        )

    def test_d_contents_match_files(self, tiny_repo, ei_db):
        uri = tiny_repo.uris()[0]
        records = read_records(tiny_repo.path_of(uri))
        expected = np.concatenate([r.samples for r in records])
        got = ei_db.execute(
            f"SELECT sample_value FROM D WHERE uri = '{uri}' "
            "ORDER BY record_id, sample_time"
        )
        assert np.allclose(got.batch.column("sample_value").values, expected)

    def test_report_consistency(self, tiny_repo):
        db = Database()
        report = eager_ingest(db, tiny_repo, build_indexes=False)
        assert report.index_seconds == 0.0
        assert report.index_bytes == 0
        assert report.files == len(tiny_repo)
        assert report.total_bytes == report.data_bytes


class TestLazyIngest:
    def test_metadata_equal_to_eager(self, ei_db, ali_db):
        for table in (FILE_TABLE, RECORD_TABLE):
            assert sorted(ali_db.catalog.table(table).batch.rows()) == sorted(
                ei_db.catalog.table(table).batch.rows()
            )

    def test_actual_table_empty(self, ali_db):
        assert ali_db.catalog.table(ACTUAL_TABLE).num_rows == 0

    def test_no_indexes(self, ali_db):
        assert ali_db.index_nbytes() == 0

    def test_metadata_much_smaller(self, tiny_repo, ali_db, ei_db):
        meta_bytes = (
            ali_db.catalog.table(FILE_TABLE).nbytes()
            + ali_db.catalog.table(RECORD_TABLE).nbytes()
        )
        assert meta_bytes * 10 < ei_db.data_nbytes()

    def test_report(self, tiny_repo):
        db = Database()
        report = lazy_ingest_metadata(db, tiny_repo)
        assert report.files == len(tiny_repo)
        assert report.samples > 0
        assert report.metadata_bytes > 0

    def test_ensure_schema_idempotent(self, tiny_repo):
        db = Database()
        ensure_schema(db)
        ensure_schema(db)
        lazy_ingest_metadata(db, tiny_repo)
        assert db.catalog.table(FILE_TABLE).num_rows == len(tiny_repo)
