"""Tests for name resolution and logical plan construction."""

import pytest

from repro.db import ColumnDef, Database, DataType, TableKind, TableSchema
from repro.db.errors import BindError
from repro.db.plan.logical import (
    Aggregate,
    Distinct,
    Join,
    Limit,
    Project,
    Scan,
    Select,
    Sort,
)


@pytest.fixture()
def db():
    db = Database()
    db.create_table(
        TableSchema(
            "F",
            [
                ColumnDef("uri", DataType.STRING),
                ColumnDef("station", DataType.STRING),
                ColumnDef("nsamples", DataType.INT64),
            ],
            kind=TableKind.METADATA,
        )
    )
    db.create_table(
        TableSchema(
            "D",
            [
                ColumnDef("uri", DataType.STRING),
                ColumnDef("sample_time", DataType.TIMESTAMP),
                ColumnDef("sample_value", DataType.FLOAT64),
            ],
            kind=TableKind.ACTUAL,
        )
    )
    return db


class TestResolution:
    def test_unqualified_unique(self, db):
        plan = db.bind_sql("SELECT station FROM F")
        assert isinstance(plan, Project)
        assert plan.output == [("station", DataType.STRING)]

    def test_qualified(self, db):
        plan = db.bind_sql("SELECT F.station FROM F")
        assert plan.output[0][0] == "station"

    def test_alias_binding(self, db):
        plan = db.bind_sql("SELECT x.station FROM F x")
        assert isinstance(plan.child, Scan)
        assert plan.child.alias == "x"

    def test_unknown_table(self, db):
        with pytest.raises(Exception):
            db.bind_sql("SELECT x FROM nosuch")

    def test_unknown_column(self, db):
        with pytest.raises(BindError):
            db.bind_sql("SELECT zzz FROM F")

    def test_ambiguous_column(self, db):
        with pytest.raises(BindError, match="ambiguous"):
            db.bind_sql("SELECT uri FROM F JOIN D ON F.uri = D.uri")

    def test_duplicate_alias_rejected(self, db):
        with pytest.raises(BindError, match="duplicate"):
            db.bind_sql("SELECT 1 FROM F a, D a")

    def test_original_alias_shadowed_by_explicit(self, db):
        with pytest.raises(BindError):
            db.bind_sql("SELECT F.station FROM F x")


class TestPlanShapes:
    def test_where_becomes_select(self, db):
        plan = db.bind_sql("SELECT station FROM F WHERE nsamples > 3")
        assert isinstance(plan, Project)
        assert isinstance(plan.child, Select)

    def test_join_on(self, db):
        plan = db.bind_sql("SELECT station FROM F JOIN D ON F.uri = D.uri")
        join = plan.child
        assert isinstance(join, Join)
        assert join.condition is not None

    def test_comma_tables_cross_product(self, db):
        plan = db.bind_sql("SELECT station FROM F, D")
        join = plan.child
        assert isinstance(join, Join)
        assert join.condition is None

    def test_order_by_inserts_sort_below_project(self, db):
        plan = db.bind_sql("SELECT station FROM F ORDER BY nsamples DESC")
        assert isinstance(plan, Project)
        assert isinstance(plan.child, Sort)
        assert plan.child.keys[0][1] is False

    def test_order_by_select_alias(self, db):
        plan = db.bind_sql("SELECT nsamples AS n FROM F ORDER BY n")
        sort = plan.child
        assert isinstance(sort, Sort)

    def test_limit_on_top(self, db):
        plan = db.bind_sql("SELECT station FROM F LIMIT 5")
        assert isinstance(plan, Limit)
        assert plan.count == 5

    def test_distinct_node(self, db):
        plan = db.bind_sql("SELECT DISTINCT station FROM F")
        assert isinstance(plan, Distinct)

    def test_where_must_be_boolean(self, db):
        with pytest.raises(BindError):
            db.bind_sql("SELECT station FROM F WHERE nsamples")

    def test_join_condition_must_be_boolean(self, db):
        with pytest.raises(BindError):
            db.bind_sql("SELECT station FROM F JOIN D ON D.sample_value")


class TestAggregates:
    def test_scalar_aggregate(self, db):
        plan = db.bind_sql("SELECT AVG(sample_value) FROM D")
        assert isinstance(plan, Project)
        agg = plan.child
        assert isinstance(agg, Aggregate)
        assert agg.groups == []
        assert agg.aggs[0].func == "avg"
        assert agg.aggs[0].dtype is DataType.FLOAT64

    def test_group_by(self, db):
        plan = db.bind_sql("SELECT station, COUNT(*) FROM F GROUP BY station")
        agg = plan.child
        assert isinstance(agg, Aggregate)
        assert len(agg.groups) == 1
        assert agg.aggs[0].func == "count"
        assert agg.aggs[0].dtype is DataType.INT64

    def test_group_key_referenced_by_qualified_name(self, db):
        plan = db.bind_sql("SELECT F.station FROM F GROUP BY station")
        assert isinstance(plan.child, Aggregate)

    def test_non_grouped_column_rejected(self, db):
        with pytest.raises(BindError, match="GROUP BY"):
            db.bind_sql("SELECT uri, COUNT(*) FROM F GROUP BY station")

    def test_bare_column_with_aggregate_rejected(self, db):
        with pytest.raises(BindError):
            db.bind_sql("SELECT station, COUNT(*) FROM F")

    def test_duplicate_aggregates_shared(self, db):
        plan = db.bind_sql(
            "SELECT AVG(sample_value), AVG(sample_value) FROM D"
        )
        agg = plan.child
        assert len(agg.aggs) == 1

    def test_arithmetic_over_aggregates(self, db):
        plan = db.bind_sql(
            "SELECT SUM(sample_value) / COUNT(*) FROM D"
        )
        agg = plan.child
        assert {spec.func for spec in agg.aggs} == {"sum", "count"}

    def test_having(self, db):
        plan = db.bind_sql(
            "SELECT station, COUNT(*) FROM F GROUP BY station "
            "HAVING COUNT(*) > 1"
        )
        assert isinstance(plan, Project)
        assert isinstance(plan.child, Select)
        assert isinstance(plan.child.child, Aggregate)

    def test_order_by_aggregate(self, db):
        plan = db.bind_sql(
            "SELECT station, COUNT(*) AS n FROM F GROUP BY station ORDER BY n DESC"
        )
        assert isinstance(plan.child, Sort)

    def test_sum_of_int_is_int(self, db):
        plan = db.bind_sql("SELECT SUM(nsamples) FROM F")
        assert plan.child.aggs[0].dtype is DataType.INT64

    def test_min_keeps_argument_type(self, db):
        plan = db.bind_sql("SELECT MIN(sample_time) FROM D")
        assert plan.child.aggs[0].dtype is DataType.TIMESTAMP

    def test_aggregate_in_where_rejected(self, db):
        with pytest.raises(BindError):
            db.bind_sql("SELECT station FROM F WHERE COUNT(*) > 1")

    def test_star_with_group_by_rejected(self, db):
        with pytest.raises(BindError):
            db.bind_sql("SELECT * FROM F GROUP BY station")


class TestStarExpansion:
    def test_bare_star(self, db):
        plan = db.bind_sql("SELECT * FROM F")
        assert [name for name, _ in plan.output] == ["uri", "station", "nsamples"]

    def test_qualified_star(self, db):
        plan = db.bind_sql("SELECT D.* FROM F JOIN D ON F.uri = D.uri")
        assert [name for name, _ in plan.output] == [
            "uri", "sample_time", "sample_value",
        ]

    def test_star_over_join_qualifies_duplicates(self, db):
        plan = db.bind_sql("SELECT * FROM F JOIN D ON F.uri = D.uri")
        names = [name for name, _ in plan.output]
        assert "f.uri" in names and "d.uri" in names
        assert "station" in names

    def test_duplicate_output_names_deduped(self, db):
        plan = db.bind_sql("SELECT station, station FROM F")
        names = [name for name, _ in plan.output]
        assert names == ["station", "station_1"]


class TestLiteralsAndExpressions:
    def test_between_lowered(self, db):
        plan = db.bind_sql(
            "SELECT station FROM F WHERE nsamples BETWEEN 2 AND 7"
        )
        predicate = plan.child.predicate
        assert "AND" in repr(predicate)

    def test_in_lowered_to_or(self, db):
        plan = db.bind_sql(
            "SELECT station FROM F WHERE station IN ('ISK', 'ANK')"
        )
        assert "OR" in repr(plan.child.predicate)

    def test_negative_literal_folded(self, db):
        plan = db.bind_sql("SELECT -5 FROM F")
        name, expr = plan.items[0]
        assert repr(expr) == "-5"

    def test_timestamp_comparison_coerced(self, db):
        plan = db.bind_sql(
            "SELECT uri FROM D WHERE sample_time > '2010-01-12T00:00:00'"
        )
        assert "1263254400000000" in repr(plan.child.predicate)
