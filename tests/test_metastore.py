"""Persistent metastore durability: round-trip, staleness, corruption.

The contract under test is §5's "cheaper, never wronger": a warm session
that loads the sidecar must produce exactly the rows a live header walk
would, and *every* failure mode of the sidecar — missing, corrupt,
truncated mid-read, version-skewed, or stale against the files on disk —
must degrade to live ingest, not to wrong answers.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core import MetadataStore, TwoStageExecutor
from repro.core.metastore import METASTORE_VERSION
from repro.db import Database
from repro.ingest import RepositoryBinding, lazy_ingest_metadata
from repro.mseed import FileRepository, RepositorySpec, generate_repository
from repro.testing.faults import SHORT_READ, FaultPlan, FaultSpec

SPEC = RepositorySpec(
    stations=("ISK",),
    channels=("BHE", "BHZ"),
    days=1,
    sample_rate=0.05,
    samples_per_record=500,
)

QUERY = (
    "SELECT COUNT(*) AS n, AVG(D.sample_value) AS a "
    "FROM F JOIN D ON F.uri = D.uri "
    "WHERE D.sample_time >= '2010-01-10T06:00:00.000' "
    "AND D.sample_time < '2010-01-10T09:00:00.000'"
)


@pytest.fixture()
def repo(tmp_path) -> FileRepository:
    """A private two-file repository (the sidecar mutates the root)."""
    generate_repository(tmp_path, SPEC)
    return FileRepository(tmp_path)


def _ingest(repo, metastore=None):
    db = Database()
    report = lazy_ingest_metadata(db, repo, metastore=metastore)
    return db, report


def _table_rows(db, name):
    return db.catalog.table(name).batch.rows()


def _answer(db, repo):
    executor = TwoStageExecutor(
        db, RepositoryBinding(repo), selective_mounts=True
    )
    return executor.execute(QUERY).rows


class TestRoundTrip:
    def test_warm_session_rows_identical(self, repo):
        store = MetadataStore.for_repository(repo.root)
        cold_db, cold_report = _ingest(repo, store)
        assert cold_report.files_reused == 0
        assert store.stats.saved_files == SPEC.file_count

        warm_store = MetadataStore.for_repository(repo.root)
        assert warm_store.load() == SPEC.file_count
        warm_db, warm_report = _ingest(repo, warm_store)
        assert warm_report.files_reused == SPEC.file_count
        assert warm_store.stats.hits == SPEC.file_count

        for table in ("F", "R"):
            assert _table_rows(warm_db, table) == _table_rows(cold_db, table)
        assert _answer(warm_db, repo) == _answer(cold_db, repo)

    def test_record_byte_map_survives(self, repo):
        """Selective mounting depends on the persisted offsets/lengths."""
        store = MetadataStore.for_repository(repo.root)
        _ingest(repo, store)
        warm = MetadataStore.for_repository(repo.root)
        warm.load()
        for uri in repo.uris():
            st = os.stat(repo.path_of(uri))
            state = warm.lookup(uri, (st.st_mtime_ns, st.st_size))
            assert state is not None
            assert all(r.byte_offset >= 0 for r in state.record_rows)
            assert all(r.byte_length > 0 for r in state.record_rows)

    def test_save_leaves_no_tmp_file(self, repo):
        store = MetadataStore.for_repository(repo.root)
        _ingest(repo, store)
        assert store.path.exists()
        assert not store.path.with_name(store.path.name + ".tmp").exists()

    def test_statistics_rebuilt_from_stored_state(self, repo):
        store = MetadataStore.for_repository(repo.root)
        _, report = _ingest(repo, store)
        warm = MetadataStore.for_repository(repo.root)
        warm.load()
        catalog = warm.statistics()
        assert sorted(catalog.files) == repo.uris()
        assert catalog.table_rows["f"] == report.files
        assert catalog.table_rows["r"] == report.records
        for uri, stats in catalog.files.items():
            assert stats.start_time < stats.end_time
            assert stats.size_bytes > 0


class TestStaleness:
    def test_signature_mismatch_returns_none(self, repo):
        store = MetadataStore.for_repository(repo.root)
        _ingest(repo, store)
        uri = repo.uris()[0]
        st = os.stat(repo.path_of(uri))
        assert store.lookup(uri, (st.st_mtime_ns, st.st_size)) is not None
        assert store.lookup(uri, (st.st_mtime_ns + 1, st.st_size)) is None
        assert store.stats.stale == 1

    def test_changed_file_falls_back_to_live_ingest(self, repo):
        store = MetadataStore.for_repository(repo.root)
        cold_db, _ = _ingest(repo, store)

        touched = repo.path_of(repo.uris()[0])
        st = touched.stat()
        os.utime(touched, ns=(st.st_atime_ns, st.st_mtime_ns + 1_000_000))

        warm_store = MetadataStore.for_repository(repo.root)
        warm_store.load()
        warm_db, report = _ingest(repo, warm_store)
        assert report.files_reused == SPEC.file_count - 1
        assert warm_store.stats.stale == 1
        # The touched file re-ingested live; rows and answers are unchanged
        # because only the mtime moved, not the bytes.
        for table in ("F", "R"):
            assert _table_rows(warm_db, table) == _table_rows(cold_db, table)
        assert _answer(warm_db, repo) == _answer(cold_db, repo)
        # The re-save re-signed the touched file: next session reuses all.
        third = MetadataStore.for_repository(repo.root)
        third.load()
        _, report3 = _ingest(repo, third)
        assert report3.files_reused == SPEC.file_count


class TestSidecarFailureModes:
    def test_missing_sidecar_is_clean_cold_start(self, tmp_path):
        store = MetadataStore(tmp_path / "absent.json")
        assert store.load() == 0
        assert store.stats.corrupt_loads == 0
        assert len(store) == 0

    def test_corrupt_sidecar_resets_and_reingests(self, repo):
        store = MetadataStore.for_repository(repo.root)
        cold_db, _ = _ingest(repo, store)
        store.path.write_text("{ this is not json")

        warm = MetadataStore.for_repository(repo.root)
        assert warm.load() == 0
        assert warm.stats.corrupt_loads == 1
        warm_db, report = _ingest(repo, warm)
        assert report.files_reused == 0
        assert _table_rows(warm_db, "R") == _table_rows(cold_db, "R")

    def test_truncated_sidecar_resets(self, repo):
        store = MetadataStore.for_repository(repo.root)
        _ingest(repo, store)
        raw = store.path.read_bytes()
        store.path.write_bytes(raw[: len(raw) // 2])

        warm = MetadataStore.for_repository(repo.root)
        assert warm.load() == 0
        assert warm.stats.corrupt_loads == 1

    def test_short_read_fault_on_load_resets(self, repo):
        """The sidecar read goes through the volume I/O hook, so the fault
        harness can tear it mid-read; the load degrades to a cold start."""
        store = MetadataStore.for_repository(repo.root)
        _ingest(repo, store)

        plan = FaultPlan(
            [
                FaultSpec(
                    uri_suffix=store.path.name,
                    kind=SHORT_READ,
                    at_read=0,
                    times=-1,
                    short_by=16,
                )
            ]
        )
        warm = MetadataStore.for_repository(repo.root)
        with plan.install():
            assert warm.load() == 0
        assert warm.stats.corrupt_loads == 1
        assert [f.uri for f in plan.log] == [f"metastore:{store.path.name}"]
        # Hook removed: the same sidecar loads fine.
        assert warm.load() == SPEC.file_count

    def test_version_mismatch_resets(self, repo):
        store = MetadataStore.for_repository(repo.root)
        _ingest(repo, store)
        payload = json.loads(store.path.read_text())
        assert payload["version"] == METASTORE_VERSION
        payload["version"] = METASTORE_VERSION + 1
        store.path.write_text(json.dumps(payload))

        warm = MetadataStore.for_repository(repo.root)
        assert warm.load() == 0
        assert warm.stats.version_mismatches == 1
        assert warm.stats.corrupt_loads == 0

    def test_malformed_record_row_is_corrupt_not_fatal(self, repo):
        store = MetadataStore.for_repository(repo.root)
        _ingest(repo, store)
        payload = json.loads(store.path.read_text())
        uri = next(iter(payload["files"]))
        payload["files"][uri]["records"][0] = [1, 2]  # wrong arity
        store.path.write_text(json.dumps(payload))

        warm = MetadataStore.for_repository(repo.root)
        assert warm.load() == 0
        assert warm.stats.corrupt_loads == 1


class TestApi:
    def test_forget_drops_one_uri(self, repo):
        store = MetadataStore.for_repository(repo.root)
        _ingest(repo, store)
        uri = repo.uris()[0]
        store.forget(uri)
        assert len(store) == SPEC.file_count - 1
        st = os.stat(repo.path_of(uri))
        assert store.lookup(uri, (st.st_mtime_ns, st.st_size)) is None
