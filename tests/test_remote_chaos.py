"""Seeded network chaos: remote answers must not depend on the weather.

The grid mounts the same repository twice — once locally fault-free
(the baseline) and once through the simulated object store with a seeded
plan of recoverable network faults (connection refusals, mid-stream
disconnects, stalls) — and asserts byte-identical rows under every
``mount_workers`` × ``selective`` combination. Any divergence is a
transport-resilience bug, not noise.

A hard-down endpoint is the complement: under ``on_mount_error="skip"``
the surviving sources of a federated query must still produce their
exact answer, and the failure report must name the dead endpoint.
"""

from __future__ import annotations

import itertools
import time

import numpy as np
import pytest

from repro.core import TwoStageExecutor
from repro.core.governor import CircuitBreaker
from repro.core.metastore import MetadataStore
from repro.db import Database
from repro.ingest import (
    RepositoryBinding,
    lazy_ingest_metadata,
    write_csv_timeseries,
)
from repro.mseed import FileRepository, RepositorySpec, generate_repository
from repro.remote import (
    FederatedRepository,
    RemoteRepository,
    SimulatedObjectStore,
    TransportPolicy,
)
from repro.testing import RECOVERABLE_NETWORK_KINDS, FaultPlan

CHAOS_SEED = 20130610  # fixed: CI smoke replays exactly this fault plan

SPEC = RepositorySpec(
    stations=("ISK", "ANK"),
    channels=("BHE", "BHZ"),
    days=2,
    sample_rate=0.02,
    samples_per_record=500,
)

# Station/count/sum over a sample-time window: exercises both stages,
# grouping, and (when enabled) the record-granular ranged-GET path.
# Deliberately does not select ``uri`` — remote URIs differ from local
# ones by construction, the *data* must not.
CHAOS_SQL = (
    "SELECT F.station, COUNT(*) AS n, SUM(D.sample_value) AS s\n"
    "FROM F JOIN D ON F.uri = D.uri\n"
    "WHERE D.sample_time > '2010-01-10T06:00:00.000'\n"
    "AND D.sample_time < '2010-01-11T18:00:00.000'\n"
    "GROUP BY F.station ORDER BY F.station"
)

GRID = list(itertools.product((1, 4), (True, False)))  # workers × selective

POLICY = TransportPolicy(max_attempts=4, backoff_seconds=0.0)


@pytest.fixture(scope="module")
def objects_dir(tmp_path_factory):
    root = tmp_path_factory.mktemp("remote_chaos_objects")
    generate_repository(root, SPEC)
    return root


@pytest.fixture(scope="module")
def local_baseline(objects_dir):
    """The fault-free, fully local answer every remote run must match."""
    repo = FileRepository(objects_dir)
    db = Database()
    lazy_ingest_metadata(db, repo)
    executor = TwoStageExecutor(db, RepositoryBinding(repo))
    return executor.execute(CHAOS_SQL).rows


@pytest.fixture(scope="module")
def metastore_path(objects_dir, tmp_path_factory):
    """Metadata harvested once over the remote URIs (a prior session).

    Later sessions reuse these rows, so their queries hit the endpoint
    *cold* — every remote byte they move travels under the fault plan.
    """
    staging = tmp_path_factory.mktemp("harvest_staging")
    path = tmp_path_factory.mktemp("metastore") / "remote.json"
    store = SimulatedObjectStore("seis-eu", objects_dir)
    repo = RemoteRepository(store, staging, policy=POLICY)
    db = Database()
    report = lazy_ingest_metadata(
        db, repo, metastore=MetadataStore(path)
    )
    assert report.files == len(repo.uris())
    return path


def _remote_executor(
    objects_dir, staging_dir, metastore_path, workers=1,
    selective=True, policy="fail",
):
    store = SimulatedObjectStore("seis-eu", objects_dir)
    repo = RemoteRepository(store, staging_dir, policy=POLICY)
    metastore = MetadataStore(metastore_path)
    metastore.load()
    db = Database()
    report = lazy_ingest_metadata(db, repo, metastore=metastore)
    assert report.files_reused == report.files  # cold staging, warm metadata
    executor = TwoStageExecutor(
        db,
        RepositoryBinding(repo),
        mount_workers=workers,
        on_mount_error=policy,
        selective_mounts=selective,
    )
    return repo, executor


class TestRemoteChaosGrid:
    @pytest.mark.parametrize("workers,selective", GRID)
    def test_recoverable_network_faults_byte_identical(
        self,
        objects_dir,
        local_baseline,
        metastore_path,
        tmp_path,
        workers,
        selective,
    ):
        repo, executor = _remote_executor(
            objects_dir,
            tmp_path / "staging",
            metastore_path,
            workers=workers,
            selective=selective,
        )
        plan = FaultPlan.seeded(
            CHAOS_SEED,
            repo.uris(),
            kinds=RECOVERABLE_NETWORK_KINDS,
            fault_rate=1.0,  # every object takes a network hit
            times=1,  # within the transport's retry ladder
        )
        assert plan.specs, "seeded plan unexpectedly empty"
        with plan.install():
            outcome = executor.execute(CHAOS_SQL)
        assert outcome.rows == local_baseline
        assert not outcome.timings.mount_failures
        assert outcome.truncation is None
        assert repo.stats.remote_bytes > 0  # the data really crossed the wire

    def test_same_seed_same_cell_same_fault_log(
        self, objects_dir, metastore_path, tmp_path_factory
    ):
        def run():
            staging = tmp_path_factory.mktemp("replay_staging")
            repo, executor = _remote_executor(
                objects_dir, staging, metastore_path, workers=4
            )
            plan = FaultPlan.seeded(
                CHAOS_SEED,
                repo.uris(),
                kinds=RECOVERABLE_NETWORK_KINDS,
                fault_rate=1.0,
                times=1,
            )
            with plan.install():
                executor.execute(CHAOS_SQL)
            return plan.signature()

        assert run() == run()


class TestFederatedDegradation:
    """One query spanning a local CSV archive and a remote xSEED endpoint."""

    @pytest.fixture()
    def federation(self, objects_dir, tmp_path):
        csv_root = tmp_path / "local_csv"
        write_csv_timeseries(
            csv_root / "van.tscsv",
            network="TR",
            station="VAN",
            location="00",
            channel="BHZ",
            sample_rate=0.02,
            start_time=1263110400000000,  # 2010-01-10T08:00 — in-window
            values=np.ones(100),
        )
        local = FileRepository(csv_root, suffix=(".tscsv",))
        store = SimulatedObjectStore("seis-eu", objects_dir)
        remote = RemoteRepository(
            store,
            tmp_path / "staging",
            policy=POLICY,
            breaker=CircuitBreaker(failure_threshold=3, cooldown_seconds=0.05),
        )
        fed = FederatedRepository([local, remote])
        db = Database()
        lazy_ingest_metadata(db, fed)  # endpoint up: metadata for both

        def executor(policy="fail", workers=2):
            return TwoStageExecutor(
                db,
                RepositoryBinding(fed),
                mount_workers=workers,
                on_mount_error=policy,
            )

        return store, local, executor

    def _local_only_rows(self, local):
        db = Database()
        lazy_ingest_metadata(db, local)
        return TwoStageExecutor(db, RepositoryBinding(local)).execute(
            CHAOS_SQL
        ).rows

    def test_both_sources_answer_when_healthy(
        self, federation, local_baseline
    ):
        store, local_repo, executor = federation
        rows = executor().execute(CHAOS_SQL).rows
        stations = [row[0] for row in rows]
        assert "VAN" in stations  # the CSV member
        assert {row[0] for row in local_baseline} <= set(stations)

    def test_dead_endpoint_skip_keeps_surviving_sources_exact(
        self, federation
    ):
        store, local_repo, executor = federation
        store.set_down()
        outcome = executor(policy="skip").execute(CHAOS_SQL)
        # Surviving source: byte-for-byte its stand-alone answer.
        assert outcome.rows == self._local_only_rows(local_repo)
        report = outcome.timings.mount_failures
        assert report, "dead endpoint must be reported, not silent"
        assert report.endpoints() == ["seis-eu"]
        assert all(uri.startswith("remote://seis-eu/") for uri in report.uris())

    def test_dead_endpoint_fail_fast_names_the_endpoint(self, federation):
        store, _, executor = federation
        store.set_down()
        with pytest.raises(Exception) as excinfo:
            executor(policy="fail").execute(CHAOS_SQL)
        assert "seis-eu" in str(excinfo.value)

    def test_flapping_endpoint_recovers_after_cooldown(
        self, federation, local_baseline
    ):
        store, local_repo, executor = federation
        healthy = executor().execute(CHAOS_SQL).rows
        store.set_down()
        degraded = executor(policy="skip").execute(CHAOS_SQL)
        assert degraded.timings.mount_failures.endpoints() == ["seis-eu"]
        store.set_down(False)
        time.sleep(0.1)  # past the breaker cooldown: half-open probes
        recovered = executor(policy="skip").execute(CHAOS_SQL)
        assert recovered.rows == healthy
        assert not recovered.timings.mount_failures
