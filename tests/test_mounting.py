"""Tests for the mount service and interval extraction."""

import numpy as np
import pytest

from repro.core import (
    CacheGranularity,
    CachePolicy,
    IngestionCache,
    MountService,
    interval_from_predicate,
)
from repro.core.cache import INF
from repro.db.errors import IngestError
from repro.db.expr import BoolOp, ColumnRef, Comparison, Literal
from repro.db.types import DataType
from repro.ingest import RepositoryBinding
from repro.ingest.schema import BindingSet
from repro.mseed import read_records


def time_ref():
    return ColumnRef("d.sample_time", DataType.TIMESTAMP)


def ts_literal(micros):
    return Literal(micros, DataType.TIMESTAMP)


class TestIntervalExtraction:
    def test_no_predicate(self):
        assert interval_from_predicate(None, "d.sample_time") == (-INF, INF)

    def test_range_conjuncts(self):
        predicate = BoolOp(
            "and",
            [
                Comparison(">", time_ref(), ts_literal(100)),
                Comparison("<=", time_ref(), ts_literal(500)),
            ],
        )
        assert interval_from_predicate(predicate, "d.sample_time") == (100, 500)

    def test_mirrored_comparison(self):
        predicate = Comparison("<", ts_literal(100), time_ref())
        assert interval_from_predicate(predicate, "d.sample_time") == (100, INF)

    def test_equality_pins_both_sides(self):
        predicate = Comparison("=", time_ref(), ts_literal(42))
        assert interval_from_predicate(predicate, "d.sample_time") == (42, 42)

    def test_other_columns_ignored(self):
        other = Comparison(
            ">", ColumnRef("d.sample_value", DataType.FLOAT64), Literal.infer(1.0)
        )
        assert interval_from_predicate(other, "d.sample_time") == (-INF, INF)

    def test_tightest_bounds_win(self):
        predicate = BoolOp(
            "and",
            [
                Comparison(">", time_ref(), ts_literal(10)),
                Comparison(">", time_ref(), ts_literal(50)),
                Comparison("<", time_ref(), ts_literal(900)),
                Comparison("<", time_ref(), ts_literal(700)),
            ],
        )
        assert interval_from_predicate(predicate, "d.sample_time") == (50, 700)


@pytest.fixture()
def service(tiny_repo):
    return MountService(
        BindingSet.single(RepositoryBinding(tiny_repo)),
        IngestionCache(CachePolicy.UNBOUNDED),
    )


class TestMountFile:
    def test_mount_matches_direct_read(self, tiny_repo, service):
        uri = tiny_repo.uris()[0]
        batch = service.mount_file(uri, "D", "d", None)
        records = read_records(tiny_repo.path_of(uri))
        expected = np.concatenate([r.samples for r in records])
        assert np.array_equal(
            batch.column("d.sample_value").values, expected.astype(np.float64)
        )
        assert batch.names == [
            "d.uri", "d.record_id", "d.sample_time", "d.sample_value",
        ]

    def test_predicate_fused(self, tiny_repo, service):
        uri = tiny_repo.uris()[0]
        full = service.mount_file(uri, "D", "d", None)
        times = full.column("d.sample_time").values
        lo, hi = int(times[10]), int(times[50])
        predicate = BoolOp(
            "and",
            [
                Comparison(">=", time_ref(), ts_literal(lo)),
                Comparison("<=", time_ref(), ts_literal(hi)),
            ],
        )
        filtered = service.mount_file(uri, "D", "d", predicate)
        assert filtered.num_rows == 41

    def test_stats_updated(self, tiny_repo, service):
        uri = tiny_repo.uris()[0]
        service.mount_file(uri, "D", "d", None)
        assert service.stats.mounts == 1
        assert service.stats.tuples_mounted > 0
        assert service.stats.bytes_read > 0

    def test_unknown_table_rejected(self, service):
        with pytest.raises(IngestError):
            service.mount_file("any", "NOT_BOUND", "x", None)

    def test_callbacks_see_canonical_batch(self, tiny_repo, service):
        seen = {}

        def callback(uri, batch):
            seen[uri] = batch.names

        service.add_mount_callback(callback)
        uri = tiny_repo.uris()[0]
        service.mount_file(uri, "D", "d", None)
        assert seen[uri] == ["uri", "record_id", "sample_time", "sample_value"]


class TestCacheScan:
    def test_cache_scan_after_mount(self, tiny_repo, service):
        uri = tiny_repo.uris()[0]
        mounted = service.mount_file(uri, "D", "d", None)
        cached = service.cache_scan(uri, "D", "d", None)
        assert cached.num_rows == mounted.num_rows
        assert service.stats.cache_scans == 1
        assert service.stats.mounts == 1

    def test_cache_scan_falls_back_to_mount(self, tiny_repo, service):
        uri = tiny_repo.uris()[0]
        result = service.cache_scan(uri, "D", "d", None)
        assert result.num_rows > 0
        assert service.stats.fallback_mounts == 1

    def test_discard_policy_never_caches(self, tiny_repo):
        service = MountService(
            BindingSet.single(RepositoryBinding(tiny_repo)),
            IngestionCache(CachePolicy.DISCARD),
        )
        uri = tiny_repo.uris()[0]
        service.mount_file(uri, "D", "d", None)
        assert not service.cache.contains(uri)


class TestTupleGranularMounting:
    def test_interval_stored_not_full_file(self, tiny_repo):
        service = MountService(
            BindingSet.single(RepositoryBinding(tiny_repo)),
            IngestionCache(CachePolicy.UNBOUNDED, CacheGranularity.TUPLE),
        )
        uri = tiny_repo.uris()[0]
        probe = service.mount_file(uri, "D", "d", None)
        times = probe.column("d.sample_time").values
        lo, hi = int(times[0]), int(times[99])
        predicate = BoolOp(
            "and",
            [
                Comparison(">=", time_ref(), ts_literal(lo)),
                Comparison("<=", time_ref(), ts_literal(hi)),
            ],
        )
        service.cache.clear()
        service.mount_file(uri, "D", "d", predicate)
        assert service.cache.contains(uri, (lo, hi))
        assert not service.cache.contains(uri, (lo, hi + 10**12))
        entry = service.cache.lookup(uri, (lo, hi))
        assert entry.num_rows == 100  # only the interval's tuples retained

    def test_value_predicates_not_baked_into_cache(self, tiny_repo):
        """Non-time conjuncts must not narrow what the cache stores."""
        service = MountService(
            BindingSet.single(RepositoryBinding(tiny_repo)),
            IngestionCache(CachePolicy.UNBOUNDED, CacheGranularity.TUPLE),
        )
        uri = tiny_repo.uris()[0]
        probe = service.mount_file(uri, "D", "d", None)
        times = probe.column("d.sample_time").values
        lo, hi = int(times[0]), int(times[99])
        value_pred = Comparison(
            ">",
            ColumnRef("d.sample_value", DataType.FLOAT64),
            Literal.infer(10.0 ** 9),  # matches nothing
        )
        predicate = BoolOp(
            "and",
            [
                Comparison(">=", time_ref(), ts_literal(lo)),
                Comparison("<=", time_ref(), ts_literal(hi)),
                value_pred,
            ],
        )
        service.cache.clear()
        delivered = service.mount_file(uri, "D", "d", predicate)
        assert delivered.num_rows == 0  # value predicate filtered delivery
        cached = service.cache.lookup(uri, (lo, hi))
        assert cached.num_rows == 100  # but the cache kept the full interval
