"""Tests for the mount service and interval extraction."""

import threading

import numpy as np
import pytest

from repro.core import (
    FAIL_FAST,
    SKIP_AND_REPORT,
    CacheGranularity,
    CachePolicy,
    CancellationToken,
    IngestionCache,
    MountService,
    interval_from_predicate,
)
from repro.core.cache import INF
from repro.db.buffer import BufferManager
from repro.db.errors import (
    CorruptFileError,
    FileIngestError,
    IngestError,
    StaleFileError,
    TruncatedFileError,
)
from repro.db.expr import BoolOp, ColumnRef, Comparison, Literal
from repro.db.types import DataType
from repro.ingest import RepositoryBinding
from repro.ingest.schema import BindingSet
from repro.ingest.xseed_format import XSeedExtractor
from repro.mseed import FileRepository, generate_repository, read_records


def time_ref():
    return ColumnRef("d.sample_time", DataType.TIMESTAMP)


def ts_literal(micros):
    return Literal(micros, DataType.TIMESTAMP)


class TestIntervalExtraction:
    def test_no_predicate(self):
        assert interval_from_predicate(None, "d.sample_time") == (-INF, INF)

    def test_range_conjuncts(self):
        predicate = BoolOp(
            "and",
            [
                Comparison(">", time_ref(), ts_literal(100)),
                Comparison("<=", time_ref(), ts_literal(500)),
            ],
        )
        assert interval_from_predicate(predicate, "d.sample_time") == (100, 500)

    def test_mirrored_comparison(self):
        predicate = Comparison("<", ts_literal(100), time_ref())
        assert interval_from_predicate(predicate, "d.sample_time") == (100, INF)

    def test_equality_pins_both_sides(self):
        predicate = Comparison("=", time_ref(), ts_literal(42))
        assert interval_from_predicate(predicate, "d.sample_time") == (42, 42)

    def test_other_columns_ignored(self):
        other = Comparison(
            ">", ColumnRef("d.sample_value", DataType.FLOAT64), Literal.infer(1.0)
        )
        assert interval_from_predicate(other, "d.sample_time") == (-INF, INF)

    def test_tightest_bounds_win(self):
        predicate = BoolOp(
            "and",
            [
                Comparison(">", time_ref(), ts_literal(10)),
                Comparison(">", time_ref(), ts_literal(50)),
                Comparison("<", time_ref(), ts_literal(900)),
                Comparison("<", time_ref(), ts_literal(700)),
            ],
        )
        assert interval_from_predicate(predicate, "d.sample_time") == (50, 700)

    def test_or_of_ranges_stays_unbounded(self):
        """An OR is not a conjunct: neither disjunct may narrow the hull
        (each alone would wrongly exclude the other's rows)."""
        predicate = BoolOp(
            "or",
            [
                Comparison("<", time_ref(), ts_literal(100)),
                Comparison(">", time_ref(), ts_literal(500)),
            ],
        )
        assert interval_from_predicate(predicate, "d.sample_time") == (
            -INF, INF,
        )

    def test_or_under_and_only_sibling_conjuncts_narrow(self):
        disjunction = BoolOp(
            "or",
            [
                Comparison("<", time_ref(), ts_literal(100)),
                Comparison(">", time_ref(), ts_literal(500)),
            ],
        )
        predicate = BoolOp(
            "and",
            [disjunction, Comparison("<=", time_ref(), ts_literal(900))],
        )
        assert interval_from_predicate(predicate, "d.sample_time") == (
            -INF, 900,
        )

    def test_equality_on_non_timestamp_column_ignored(self):
        """``=`` on a non-TIMESTAMP column must not pin the interval — only
        TIMESTAMP bounds on the time key itself license record pruning.
        (The expr layer already rejects `time = <int64 literal>` outright,
        so the non-TIMESTAMP guard is exercised via other columns.)"""
        predicate = BoolOp(
            "and",
            [
                Comparison(
                    "=",
                    ColumnRef("d.record_id", DataType.INT64),
                    Literal.infer(42),
                ),
                Comparison(
                    "=",
                    ColumnRef("d.station", DataType.STRING),
                    Literal.infer("ISK"),
                ),
            ],
        )
        assert interval_from_predicate(predicate, "d.sample_time") == (
            -INF, INF,
        )

    def test_time_to_time_comparison_ignored(self):
        """A column-to-column comparison carries no literal bound."""
        predicate = Comparison(
            ">", time_ref(), ColumnRef("d.other_time", DataType.TIMESTAMP)
        )
        assert interval_from_predicate(predicate, "d.sample_time") == (
            -INF, INF,
        )

    def test_contradictory_conjuncts_yield_empty_interval(self):
        predicate = BoolOp(
            "and",
            [
                Comparison(">", time_ref(), ts_literal(500)),
                Comparison("<", time_ref(), ts_literal(100)),
            ],
        )
        lo, hi = interval_from_predicate(predicate, "d.sample_time")
        assert lo > hi  # empty: the branch can produce no rows

    def test_empty_interval_short_circuits_without_touching_disk(
        self, scratch_repo
    ):
        """A contradictory fused predicate answers empty even when the file
        is gone from disk — proof the branch never opened it."""
        service = MountService(
            BindingSet.single(RepositoryBinding(scratch_repo)),
            IngestionCache(CachePolicy.UNBOUNDED),
        )
        uri = scratch_repo.uris()[0]
        scratch_repo.path_of(uri).unlink()
        predicate = BoolOp(
            "and",
            [
                Comparison(">", time_ref(), ts_literal(500)),
                Comparison("<", time_ref(), ts_literal(100)),
            ],
        )
        batch = service.mount_file(uri, "D", "d", predicate)
        assert batch.num_rows == 0
        assert service.stats.empty_interval_skips == 1
        assert service.stats.mounts == 0
        assert service.stats.bytes_read == 0


@pytest.fixture()
def service(tiny_repo):
    return MountService(
        BindingSet.single(RepositoryBinding(tiny_repo)),
        IngestionCache(CachePolicy.UNBOUNDED),
    )


@pytest.fixture()
def scratch_repo(tmp_path, tiny_spec):
    """A throwaway copy of the tiny repository for tests that damage files
    (the session-scoped tiny_repo is read-only by contract)."""
    generate_repository(tmp_path, tiny_spec)
    return FileRepository(tmp_path)


class TestMountFile:
    def test_mount_matches_direct_read(self, tiny_repo, service):
        uri = tiny_repo.uris()[0]
        batch = service.mount_file(uri, "D", "d", None)
        records = read_records(tiny_repo.path_of(uri))
        expected = np.concatenate([r.samples for r in records])
        assert np.array_equal(
            batch.column("d.sample_value").values, expected.astype(np.float64)
        )
        assert batch.names == [
            "d.uri", "d.record_id", "d.sample_time", "d.sample_value",
        ]

    def test_predicate_fused(self, tiny_repo, service):
        uri = tiny_repo.uris()[0]
        full = service.mount_file(uri, "D", "d", None)
        times = full.column("d.sample_time").values
        lo, hi = int(times[10]), int(times[50])
        predicate = BoolOp(
            "and",
            [
                Comparison(">=", time_ref(), ts_literal(lo)),
                Comparison("<=", time_ref(), ts_literal(hi)),
            ],
        )
        filtered = service.mount_file(uri, "D", "d", predicate)
        assert filtered.num_rows == 41

    def test_stats_updated(self, tiny_repo, service):
        uri = tiny_repo.uris()[0]
        service.mount_file(uri, "D", "d", None)
        assert service.stats.mounts == 1
        assert service.stats.tuples_mounted > 0
        assert service.stats.bytes_read > 0

    def test_unknown_table_rejected(self, service):
        with pytest.raises(IngestError):
            service.mount_file("any", "NOT_BOUND", "x", None)

    def test_callbacks_see_canonical_batch(self, tiny_repo, service):
        seen = {}

        def callback(uri, batch):
            seen[uri] = batch.names

        service.add_mount_callback(callback)
        uri = tiny_repo.uris()[0]
        service.mount_file(uri, "D", "d", None)
        assert seen[uri] == ["uri", "record_id", "sample_time", "sample_value"]


class TestCacheScan:
    def test_cache_scan_after_mount(self, tiny_repo, service):
        uri = tiny_repo.uris()[0]
        mounted = service.mount_file(uri, "D", "d", None)
        cached = service.cache_scan(uri, "D", "d", None)
        assert cached.num_rows == mounted.num_rows
        assert service.stats.cache_scans == 1
        assert service.stats.mounts == 1

    def test_cache_scan_falls_back_to_mount(self, tiny_repo, service):
        uri = tiny_repo.uris()[0]
        result = service.cache_scan(uri, "D", "d", None)
        assert result.num_rows > 0
        assert service.stats.fallback_mounts == 1

    def test_discard_policy_never_caches(self, tiny_repo):
        service = MountService(
            BindingSet.single(RepositoryBinding(tiny_repo)),
            IngestionCache(CachePolicy.DISCARD),
        )
        uri = tiny_repo.uris()[0]
        service.mount_file(uri, "D", "d", None)
        assert not service.cache.contains(uri)


class TestTupleGranularMounting:
    def test_interval_stored_not_full_file(self, tiny_repo):
        service = MountService(
            BindingSet.single(RepositoryBinding(tiny_repo)),
            IngestionCache(CachePolicy.UNBOUNDED, CacheGranularity.TUPLE),
        )
        uri = tiny_repo.uris()[0]
        probe = service.mount_file(uri, "D", "d", None)
        times = probe.column("d.sample_time").values
        lo, hi = int(times[0]), int(times[99])
        predicate = BoolOp(
            "and",
            [
                Comparison(">=", time_ref(), ts_literal(lo)),
                Comparison("<=", time_ref(), ts_literal(hi)),
            ],
        )
        service.cache.clear()
        service.mount_file(uri, "D", "d", predicate)
        assert service.cache.contains(uri, (lo, hi))
        assert not service.cache.contains(uri, (lo, hi + 10**12))
        entry = service.cache.lookup(uri, (lo, hi))
        assert entry.num_rows == 100  # only the interval's tuples retained

    def test_value_predicates_not_baked_into_cache(self, tiny_repo):
        """Non-time conjuncts must not narrow what the cache stores."""
        service = MountService(
            BindingSet.single(RepositoryBinding(tiny_repo)),
            IngestionCache(CachePolicy.UNBOUNDED, CacheGranularity.TUPLE),
        )
        uri = tiny_repo.uris()[0]
        probe = service.mount_file(uri, "D", "d", None)
        times = probe.column("d.sample_time").values
        lo, hi = int(times[0]), int(times[99])
        value_pred = Comparison(
            ">",
            ColumnRef("d.sample_value", DataType.FLOAT64),
            Literal.infer(10.0 ** 9),  # matches nothing
        )
        predicate = BoolOp(
            "and",
            [
                Comparison(">=", time_ref(), ts_literal(lo)),
                Comparison("<=", time_ref(), ts_literal(hi)),
                value_pred,
            ],
        )
        service.cache.clear()
        delivered = service.mount_file(uri, "D", "d", predicate)
        assert delivered.num_rows == 0  # value predicate filtered delivery
        cached = service.cache.lookup(uri, (lo, hi))
        assert cached.num_rows == 100  # but the cache kept the full interval


class FlakyExtractor:
    """Delegates to XSeedExtractor after failing ``fail_times`` transiently."""

    format_name = "flaky-xseed"
    suffix = ".xseed"

    def __init__(self, fail_times=2, transient=True):
        self.fail_times = fail_times
        self.transient = transient
        self.mount_calls = 0
        self._inner = XSeedExtractor()

    def extract_metadata(self, path, uri):
        return self._inner.extract_metadata(path, uri)

    def mount(self, path, uri):
        self.mount_calls += 1
        if self.mount_calls <= self.fail_times:
            raise FileIngestError(
                "injected flake", uri=uri, transient=self.transient
            )
        return self._inner.mount(path, uri)


def _flaky_service(tiny_repo, extractor, **kwargs):
    from repro.ingest.formats import FormatRegistry

    registry = FormatRegistry()
    registry.register(extractor)
    return MountService(
        BindingSet.single(RepositoryBinding(tiny_repo, registry=registry)),
        IngestionCache(CachePolicy.DISCARD),
        retry_backoff_seconds=0.0,
        **kwargs,
    )


class TestRetry:
    def test_transient_failure_retried_to_success(self, tiny_repo):
        extractor = FlakyExtractor(fail_times=2)
        service = _flaky_service(tiny_repo, extractor, max_retries=2)
        uri = tiny_repo.uris()[0]
        batch = service.mount_file(uri, "D", "d", None)
        assert batch.num_rows > 0
        assert extractor.mount_calls == 3
        assert service.stats.retries == 2

    def test_retries_exhausted_raises_with_count(self, tiny_repo):
        extractor = FlakyExtractor(fail_times=100)
        service = _flaky_service(tiny_repo, extractor, max_retries=2)
        uri = tiny_repo.uris()[0]
        with pytest.raises(FileIngestError) as excinfo:
            service.mount_file(uri, "D", "d", None)
        assert extractor.mount_calls == 3  # initial try + 2 retries
        assert excinfo.value.ingest_retries == 2
        assert excinfo.value.uri == uri

    def test_non_transient_failure_not_retried(self, tiny_repo):
        extractor = FlakyExtractor(fail_times=100, transient=False)
        service = _flaky_service(tiny_repo, extractor, max_retries=2)
        with pytest.raises(FileIngestError):
            service.mount_file(tiny_repo.uris()[0], "D", "d", None)
        assert extractor.mount_calls == 1
        assert service.stats.retries == 0

    def test_retry_deadline_cuts_the_ladder_short(self, tiny_repo):
        """A backoff that would cross the wall-clock deadline gives up
        immediately; the error still names the offending URI first."""
        from repro.ingest.formats import FormatRegistry

        extractor = FlakyExtractor(fail_times=100)
        registry = FormatRegistry()
        registry.register(extractor)
        service = MountService(
            BindingSet.single(RepositoryBinding(tiny_repo, registry=registry)),
            IngestionCache(CachePolicy.DISCARD),
            max_retries=100,
            retry_backoff_seconds=0.05,
            retry_deadline_seconds=0.04,
        )
        uri = tiny_repo.uris()[0]
        with pytest.raises(FileIngestError) as excinfo:
            service.mount_file(uri, "D", "d", None)
        assert excinfo.value.uri == uri
        assert service.stats.retry_deadline_hits == 1
        # First backoff (50 ms) already crossed the 40 ms deadline: exactly
        # one attempt, no sleeping.
        assert extractor.mount_calls == 1
        assert service.stats.retries == 0

    def test_deadline_roomy_enough_still_retries(self, tiny_repo):
        extractor = FlakyExtractor(fail_times=2)
        service = _flaky_service(
            tiny_repo, extractor, max_retries=5, retry_deadline_seconds=30.0
        )
        batch = service.mount_file(tiny_repo.uris()[0], "D", "d", None)
        assert batch.num_rows > 0
        assert service.stats.retries == 2
        assert service.stats.retry_deadline_hits == 0


class _BackoffRecordingToken(CancellationToken):
    """A live token whose timed waits are recorded and return instantly."""

    def __init__(self):
        super().__init__()
        self.waits = []

    def wait(self, timeout=None):
        if timeout is not None:
            self.waits.append(timeout)
            return False
        return super().wait(timeout)


class TestRetryJitter:
    """Regression: the retry ladder's jitter is seeded, bounded, and spread.

    A fleet of workers that all failed against the same endpoint at the
    same instant must not come back at the same instant — jitter stretches
    each linear backoff by a uniform draw from [1, 1 + retry_jitter].
    """

    def _ladder(self, tiny_repo, *, jitter, seed, fails=3):
        import random

        extractor = FlakyExtractor(fail_times=fails)
        token = _BackoffRecordingToken()
        service = _flaky_service(
            tiny_repo,
            extractor,
            max_retries=fails,
            retry_jitter=jitter,
            cancellation=token,
        )
        service.retry_backoff_seconds = 0.01
        service._retry_rng = random.Random(seed)
        batch = service.mount_file(tiny_repo.uris()[0], "D", "d", None)
        assert batch.num_rows > 0
        return token.waits

    def test_fixed_seed_reproduces_the_exact_jittered_ladder(self, tiny_repo):
        import random

        waits = self._ladder(tiny_repo, jitter=0.5, seed=42)
        rng = random.Random(42)
        expected = [
            0.01 * (attempt + 1) * (1.0 + 0.5 * rng.random())
            for attempt in range(3)
        ]
        assert waits == pytest.approx(expected)

    def test_jittered_waits_stay_within_the_advertised_band(self, tiny_repo):
        for seed in (0, 7, 20130610):
            waits = self._ladder(tiny_repo, jitter=0.5, seed=seed)
            assert len(waits) == 3
            for attempt, wait in enumerate(waits):
                base = 0.01 * (attempt + 1)
                assert base <= wait <= base * 1.5

    def test_two_seeds_spread_apart_one_seed_replays(self, tiny_repo):
        first = self._ladder(tiny_repo, jitter=0.5, seed=1)
        replay = self._ladder(tiny_repo, jitter=0.5, seed=1)
        other = self._ladder(tiny_repo, jitter=0.5, seed=2)
        assert first == replay
        assert first != other  # distinct seeds → distinct comeback times

    def test_zero_jitter_keeps_the_linear_ladder_exact(self, tiny_repo):
        waits = self._ladder(tiny_repo, jitter=0.0, seed=42)
        assert waits == pytest.approx([0.01, 0.02, 0.03])


class TestSkipAndReport:
    def corrupt(self, repo, uri):
        path = repo.path_of(uri)
        raw = bytearray(path.read_bytes())
        raw[100] ^= 0xFF
        path.write_bytes(bytes(raw))

    def test_fail_fast_raises(self, scratch_repo):
        service = MountService(
            BindingSet.single(RepositoryBinding(scratch_repo)),
            IngestionCache(CachePolicy.DISCARD),
        )
        uri = scratch_repo.uris()[0]
        self.corrupt(scratch_repo, uri)
        assert service.on_error == FAIL_FAST
        with pytest.raises(IngestError):
            service.mount_file(uri, "D", "d", None)

    def test_skip_returns_empty_batch_and_reports(self, scratch_repo):
        service = MountService(
            BindingSet.single(RepositoryBinding(scratch_repo)),
            IngestionCache(CachePolicy.DISCARD),
            on_error=SKIP_AND_REPORT,
        )
        uri = scratch_repo.uris()[0]
        self.corrupt(scratch_repo, uri)
        batch = service.mount_file(uri, "D", "d", None)
        assert batch.num_rows == 0
        assert batch.names == [
            "d.uri", "d.record_id", "d.sample_time", "d.sample_value",
        ]
        assert len(service.failure_report) == 1
        failure = service.failure_report.failures[0]
        assert failure.uri == uri
        assert failure.error in ("SteimError", "CorruptFileError")
        assert uri in service.failure_report.describe()
        assert service.stats.skipped_mounts == 1

    def test_quarantine_skips_repeat_mounts(self, scratch_repo):
        """A self-join takes the same file twice; the second take must not
        re-extract or double-report it."""
        service = MountService(
            BindingSet.single(RepositoryBinding(scratch_repo)),
            IngestionCache(CachePolicy.DISCARD),
            on_error=SKIP_AND_REPORT,
        )
        uri = scratch_repo.uris()[0]
        self.corrupt(scratch_repo, uri)
        service.mount_file(uri, "D", "d", None)
        service.mount_file(uri, "D", "d2", None)
        assert len(service.failure_report) == 1
        assert service.stats.skipped_mounts == 2

    def test_reset_failures_clears_quarantine(self, scratch_repo):
        service = MountService(
            BindingSet.single(RepositoryBinding(scratch_repo)),
            IngestionCache(CachePolicy.DISCARD),
            on_error=SKIP_AND_REPORT,
        )
        uri = scratch_repo.uris()[0]
        self.corrupt(scratch_repo, uri)
        service.mount_file(uri, "D", "d", None)
        assert service.failure_report
        service.reset_failures()
        assert not service.failure_report
        assert service.stats.skipped_mounts == 1  # stats are cumulative

    def test_intact_files_unaffected(self, scratch_repo):
        service = MountService(
            BindingSet.single(RepositoryBinding(scratch_repo)),
            IngestionCache(CachePolicy.DISCARD),
            on_error=SKIP_AND_REPORT,
        )
        bad, good = scratch_repo.uris()[0], scratch_repo.uris()[1]
        self.corrupt(scratch_repo, bad)
        assert service.mount_file(bad, "D", "d", None).num_rows == 0
        assert service.mount_file(good, "D", "d", None).num_rows > 0
        assert service.failure_report.uris() == [bad]

    def test_invalid_policy_rejected(self, scratch_repo):
        with pytest.raises(ValueError):
            MountService(
                BindingSet.single(RepositoryBinding(scratch_repo)),
                on_error="explode",
            )


class TestStaleDetection:
    def test_file_deleted_mid_extract_is_stale(self, scratch_repo):
        """Delete the file between the pre-stat and the decode: the typed
        StaleFileError (transient) surfaces, not a raw FileNotFoundError."""

        class DeletingExtractor(FlakyExtractor):
            def __init__(self):
                super().__init__(fail_times=0)

            def mount(self, path, uri):
                mounted = super().mount(path, uri)
                path.unlink()
                return mounted

        service = _flaky_service(
            scratch_repo, DeletingExtractor(), max_retries=0
        )
        with pytest.raises(StaleFileError) as excinfo:
            service.mount_file(scratch_repo.uris()[0], "D", "d", None)
        assert excinfo.value.transient

    def test_file_rewritten_mid_extract_is_stale(self, scratch_repo):
        class RewritingExtractor(FlakyExtractor):
            def __init__(self):
                super().__init__(fail_times=0)

            def mount(self, path, uri):
                mounted = super().mount(path, uri)
                path.write_bytes(path.read_bytes() + b"x")
                return mounted

        service = _flaky_service(
            scratch_repo, RewritingExtractor(), max_retries=0
        )
        with pytest.raises(StaleFileError):
            service.mount_file(scratch_repo.uris()[0], "D", "d", None)


class TestConcurrentExtraction:
    """The service must not hold its own lock across buffer-manager calls:
    concurrent _extract calls hammer one BufferManager and the byte
    accounting must come out exact."""

    def test_parallel_extract_accounting(self, tiny_repo):
        service = MountService(
            BindingSet.single(RepositoryBinding(tiny_repo)),
            IngestionCache(CachePolicy.DISCARD),
            buffers=BufferManager(),
        )
        uris = tiny_repo.uris()
        sizes = {u: tiny_repo.path_of(u).stat().st_size for u in uris}
        rounds = 8
        errors = []
        barrier = threading.Barrier(4)

        def hammer(worker):
            try:
                barrier.wait(timeout=10)
                for i in range(rounds):
                    uri = uris[(worker + i) % len(uris)]
                    batch = service._extract(uri, "D").batch
                    assert batch.num_rows > 0
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        expected = sum(
            sizes[uris[(w + i) % len(uris)]]
            for w in range(4)
            for i in range(rounds)
        )
        assert service.stats.bytes_read == expected
        # Each distinct file was charged to the disk model exactly once.
        assert service.buffers.stats.objects_read == len(set(uris))
        assert service.buffers.stats.bytes_read == sum(
            sizes[u] for u in set(uris)
        )
