"""Tests for run-time rewrite rule (1): scan(a) → ∪ mount/cache-scan."""

import pytest

from repro.core import (
    CachePolicy,
    IngestionCache,
    RewriteReport,
    apply_ali_rewrite,
    decompose,
    rewrite_actual_scan,
)
from repro.core.rules import uris_from_uri_predicate
from repro.db.expr import BoolOp, ColumnRef, Comparison, Literal
from repro.db.plan.logical import CacheScan, Mount, Scan, Select, UnionAll
from repro.db.types import DataType


def actual_scan():
    return Scan(
        "D",
        "d",
        [
            ("d.uri", DataType.STRING),
            ("d.sample_time", DataType.TIMESTAMP),
            ("d.sample_value", DataType.FLOAT64),
        ],
    )


class TestRewriteActualScan:
    def test_all_mounts_when_cache_empty(self):
        cache = IngestionCache(CachePolicy.DISCARD)
        report = RewriteReport()
        union = rewrite_actual_scan(
            actual_scan(), None, ["f1", "f2"], cache, report=report
        )
        assert isinstance(union, UnionAll)
        assert all(isinstance(b, Mount) for b in union.inputs)
        assert report.mounts == 2 and report.cache_scans == 0

    def test_cached_files_become_cache_scans(self, tiny_repo):
        from repro.db import Column, ColumnBatch

        cache = IngestionCache(CachePolicy.UNBOUNDED)
        dummy = ColumnBatch(
            ["sample_time"], [Column.from_pylist(DataType.TIMESTAMP, [1])]
        )
        cache.store("f1", dummy)
        union = rewrite_actual_scan(
            actual_scan(), None, ["f1", "f2"], cache
        )
        kinds = [type(b) for b in union.inputs]
        assert kinds == [CacheScan, Mount]

    def test_empty_files_yield_empty_union(self):
        union = rewrite_actual_scan(
            actual_scan(), None, [], IngestionCache()
        )
        assert union.inputs == []
        assert union.output == actual_scan().output

    def test_predicate_fused_into_branches(self):
        predicate = Comparison(
            ">",
            ColumnRef("d.sample_value", DataType.FLOAT64),
            Literal.infer(0.0),
        )
        union = rewrite_actual_scan(
            actual_scan(), predicate, ["f1"], IngestionCache()
        )
        assert union.inputs[0].predicate is predicate

    def test_branch_labels_mention_access_path(self):
        union = rewrite_actual_scan(
            actual_scan(), None, ["f1"], IngestionCache()
        )
        assert "Mount[f1]" in union.inputs[0].label()


class TestUriPredicatePruning:
    def uri_eq(self, value):
        return Comparison(
            "=", ColumnRef("d.uri", DataType.STRING), Literal.infer(value)
        )

    def test_equality_narrows(self):
        files = uris_from_uri_predicate(
            self.uri_eq("f2"), "d.uri", ["f1", "f2", "f3"]
        )
        assert files == ["f2"]

    def test_contradiction_empties(self):
        predicate = BoolOp("and", [self.uri_eq("f1"), self.uri_eq("f2")])
        assert uris_from_uri_predicate(predicate, "d.uri", ["f1", "f2"]) == []

    def test_unrelated_predicate_keeps_all(self):
        other = Comparison(
            ">", ColumnRef("d.sample_value", DataType.FLOAT64), Literal.infer(1.0)
        )
        assert uris_from_uri_predicate(other, "d.uri", ["f1"]) == ["f1"]

    def test_none_predicate(self):
        assert uris_from_uri_predicate(None, "d.uri", ["f1"]) == ["f1"]


class TestApplyAliRewrite:
    def test_full_plan_rewrite(self, ali_db, query1):
        plan = ali_db.optimize(ali_db.bind_sql(query1), metadata_first=True)
        decomposition = decompose(plan, ali_db.catalog.is_metadata_table)
        report = RewriteReport()
        rewritten = apply_ali_rewrite(
            decomposition.qs,
            {"d": ["f1", "f2"]},
            IngestionCache(),
            report=report,
        )
        unions = [n for n in rewritten.walk() if isinstance(n, UnionAll)]
        assert len(unions) == 1
        assert report.mounts == 2
        # The fused selection came from the Select(Scan(D)) shape.
        assert all(b.predicate is not None for b in unions[0].inputs)
        # No Select(Scan(actual)) remains.
        for node in rewritten.walk():
            if isinstance(node, Select):
                assert not isinstance(node.child, Scan) or \
                    node.child.table_name != "D"

    def test_aliases_not_in_map_untouched(self, ali_db, query1):
        plan = ali_db.optimize(ali_db.bind_sql(query1), metadata_first=True)
        decomposition = decompose(plan, ali_db.catalog.is_metadata_table)
        rewritten = apply_ali_rewrite(
            decomposition.qs, {}, IngestionCache()
        )
        scans = [n for n in rewritten.walk() if isinstance(n, Scan)]
        assert any(s.table_name == "D" for s in scans)

    def test_uri_pruning_reported(self, ali_db, tiny_repo):
        target = tiny_repo.uris()[0]
        sql = f"SELECT COUNT(*) FROM D WHERE uri = '{target}'"
        plan = ali_db.optimize(ali_db.bind_sql(sql), metadata_first=True)
        decomposition = decompose(plan, ali_db.catalog.is_metadata_table)
        report = RewriteReport()
        rewritten = apply_ali_rewrite(
            decomposition.qs,
            {"d": tiny_repo.uris()},
            IngestionCache(),
            report=report,
        )
        union = next(n for n in rewritten.walk() if isinstance(n, UnionAll))
        assert len(union.inputs) == 1
        assert report.pruned_by_uri_predicate == len(tiny_repo) - 1
