"""The query governor: deadlines, budgets, cancellation, circuit breaking.

The headline guarantee: a query with a 50ms deadline against a corpus whose
mounts stall for seconds comes back in well under 200ms — raising under
``on_budget="raise"``, or returning tuples-so-far with a
:class:`TruncationReport` under ``"partial"`` — with every pool worker
joined. Cancellation latency is bounded by event wake-ups, not by sleeps.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core import (
    CancellationToken,
    CircuitBreaker,
    ON_BUDGET_PARTIAL,
    QueryBudget,
    TwoStageExecutor,
)
from repro.core.governor import (
    CIRCUIT_CLOSED,
    CIRCUIT_HALF_OPEN,
    CIRCUIT_OPEN,
    QueryGovernor,
    RetryBudget,
)
from repro.db import Database
from repro.db.errors import (
    CircuitOpenError,
    QueryBudgetExceeded,
    QueryCancelledError,
    QueryInterruptedError,
)
from repro.explore import ExplorationSession
from repro.ingest import RepositoryBinding, lazy_ingest_metadata
from repro.mseed import FileRepository, RepositorySpec, generate_repository
from repro.testing import (
    READ_LATENCY,
    TRANSIENT_OSERROR,
    FaultPlan,
    FaultSpec,
)

SPEC = RepositorySpec(
    stations=("ISK", "ANK"),
    channels=("BHE", "BHZ"),
    days=2,
    sample_rate=0.02,
    samples_per_record=500,
)

COUNT_SQL = "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri"


@pytest.fixture(scope="module")
def repo(tmp_path_factory):
    root = tmp_path_factory.mktemp("governor_repo")
    generate_repository(root, SPEC)
    return FileRepository(root)


def _executor(repo, workers=1, **kwargs):
    db = Database()
    lazy_ingest_metadata(db, repo)
    return TwoStageExecutor(
        db, RepositoryBinding(repo), mount_workers=workers, **kwargs
    )


def _slow_plan(repo, token, delay=0.5):
    """Every read of every file stalls ``delay`` seconds — but the stall
    waits on the query's token, so a deadline wakes it immediately."""
    return FaultPlan(
        [
            FaultSpec(
                uri_suffix=uri,
                kind=READ_LATENCY,
                times=-1,
                delay_seconds=delay,
            )
            for uri in repo.uris()
        ],
        interrupt=token,
    )


def _mountpool_threads():
    return [
        t for t in threading.enumerate() if t.name.startswith("mountpool")
    ]


def _assert_workers_joined(timeout=2.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not _mountpool_threads():
            return
        time.sleep(0.01)
    raise AssertionError(
        f"mount pool workers leaked: {_mountpool_threads()!r}"
    )


# -- budget validation -----------------------------------------------------------


class TestQueryBudget:
    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            QueryBudget(on_budget="shrug")

    @pytest.mark.parametrize("field,value", [
        ("deadline_seconds", 0.0),
        ("deadline_seconds", -1.0),
        ("max_mount_bytes", 0),
        ("max_decoded_records", -5),
    ])
    def test_non_positive_limits_rejected(self, field, value):
        with pytest.raises(ValueError):
            QueryBudget(**{field: value})

    def test_bounded(self):
        assert not QueryBudget().bounded
        assert QueryBudget(deadline_seconds=1.0).bounded
        assert QueryBudget(max_mount_bytes=1).bounded


# -- cancellation token ----------------------------------------------------------


class TestCancellationToken:
    def test_cancel_is_a_latch(self):
        token = CancellationToken()
        assert not token.fired
        token.cancel("user hit ctrl-c")
        token.expire("too late, already cancelled")
        assert token.fired
        assert token.reason == "user hit ctrl-c"
        with pytest.raises(QueryCancelledError):
            token.raise_if_interrupted()

    def test_expire_means_budget_exceeded(self):
        token = CancellationToken()
        token.expire("deadline")
        with pytest.raises(QueryBudgetExceeded):
            token.raise_if_interrupted()

    def test_interruptions_are_not_ingest_errors(self):
        # QueryInterruptedError must never enter the skip/quarantine path.
        from repro.db.errors import IngestError

        assert not issubclass(QueryInterruptedError, IngestError)
        assert issubclass(QueryCancelledError, QueryInterruptedError)
        assert issubclass(QueryBudgetExceeded, QueryInterruptedError)

    def test_wait_wakes_on_fire(self):
        token = CancellationToken()
        threading.Timer(0.05, token.cancel).start()
        started = time.perf_counter()
        assert token.wait(5.0)
        assert time.perf_counter() - started < 1.0

    def test_on_cancel_runs_immediately_when_already_fired(self):
        token = CancellationToken()
        token.cancel()
        ran = []
        token.on_cancel(lambda: ran.append(True))
        assert ran == [True]


# -- deadlines -------------------------------------------------------------------


class TestDeadline:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_deadline_beats_slow_mounts_raise_mode(self, repo, workers):
        executor = _executor(repo, workers=workers)
        token = CancellationToken()
        plan = _slow_plan(repo, token, delay=0.5)
        budget = QueryBudget(deadline_seconds=0.05)
        started = time.perf_counter()
        with plan.install():
            with pytest.raises(QueryBudgetExceeded):
                executor.execute(COUNT_SQL, budget=budget, cancellation=token)
        elapsed = time.perf_counter() - started
        assert elapsed < 0.2, f"deadline overran: {elapsed:.3f}s"
        _assert_workers_joined()
        assert executor.mounts.pool is None

    def test_deadline_partial_mode_returns_truncation_report(self, repo):
        executor = _executor(repo, workers=4)
        token = CancellationToken()
        plan = _slow_plan(repo, token, delay=0.5)
        budget = QueryBudget(
            deadline_seconds=0.05, on_budget=ON_BUDGET_PARTIAL
        )
        started = time.perf_counter()
        with plan.install():
            outcome = executor.execute(
                COUNT_SQL, budget=budget, cancellation=token
            )
        elapsed = time.perf_counter() - started
        assert elapsed < 0.5, f"partial deadline overran: {elapsed:.3f}s"
        assert outcome.truncation is not None
        assert "deadline" in outcome.truncation.reason
        assert outcome.truncation.mounts_truncated >= 1
        assert len(outcome.rows) == 1  # the aggregate still answers
        _assert_workers_joined()

    def test_engine_recovers_after_deadline(self, repo):
        executor = _executor(repo, workers=4)
        token = CancellationToken()
        plan = _slow_plan(repo, token, delay=0.5)
        with plan.install():
            with pytest.raises(QueryBudgetExceeded):
                executor.execute(
                    COUNT_SQL,
                    budget=QueryBudget(deadline_seconds=0.05),
                    cancellation=token,
                )
        # No faults, no budget: the same executor answers normally.
        baseline = _executor(repo).execute(COUNT_SQL).rows
        assert executor.execute(COUNT_SQL).rows == baseline


# -- cancellation ----------------------------------------------------------------


class TestCancellation:
    def test_cancel_during_retry_backoff_returns_promptly(self, repo):
        """Regression: backoff used to be time.sleep — a cancel mid-ladder
        slept out the whole backoff. It must now return within one poll
        interval, and never count against retry_deadline_hits."""
        executor = _executor(repo, workers=1)
        executor.mounts.retry_backoff_seconds = 5.0  # would dominate if slept
        executor.mounts.max_retries = 3
        victim = repo.uris()[0]
        plan = FaultPlan(
            [FaultSpec(uri_suffix=victim, kind=TRANSIENT_OSERROR, times=-1)]
        )
        threading.Timer(0.15, executor.cancel).start()
        started = time.perf_counter()
        with plan.install():
            with pytest.raises(QueryCancelledError):
                executor.execute(COUNT_SQL)
        elapsed = time.perf_counter() - started
        assert elapsed < 1.0, f"cancel slept out the backoff: {elapsed:.3f}s"
        assert executor.mounts.stats.retry_deadline_hits == 0

    def test_cancel_from_another_thread_mid_mount(self, repo):
        executor = _executor(repo, workers=4)
        token = CancellationToken()
        plan = _slow_plan(repo, token, delay=0.5)
        cancelled = []
        threading.Timer(
            0.05, lambda: cancelled.append(executor.cancel())
        ).start()
        started = time.perf_counter()
        with plan.install():
            with pytest.raises(QueryCancelledError):
                executor.execute(COUNT_SQL, cancellation=token)
        assert time.perf_counter() - started < 1.0
        assert cancelled == [True]
        _assert_workers_joined()

    def test_cancel_when_idle_returns_false(self, repo):
        assert _executor(repo).cancel() is False


# -- byte / record budgets -------------------------------------------------------


class TestResourceBudgets:
    def test_byte_budget_raises(self, repo):
        executor = _executor(repo)
        with pytest.raises(QueryBudgetExceeded) as excinfo:
            executor.execute(
                COUNT_SQL, budget=QueryBudget(max_mount_bytes=1)
            )
        report = excinfo.value.truncation
        assert report is not None
        assert report.bytes_mounted > 1
        assert report.mounts_completed >= 1

    def test_byte_budget_partial_returns_tuples_so_far(self, repo):
        baseline = _executor(repo).execute(COUNT_SQL).rows[0][0]
        executor = _executor(repo)
        outcome = executor.execute(
            COUNT_SQL,
            budget=QueryBudget(
                max_mount_bytes=1, on_budget=ON_BUDGET_PARTIAL
            ),
        )
        assert outcome.truncation is not None
        assert "byte" in outcome.truncation.reason
        partial_count = outcome.rows[0][0]
        assert 0 < partial_count < baseline
        assert executor.mounts.stats.budget_truncated_mounts >= 1

    def test_record_budget_trips(self, repo):
        executor = _executor(repo)
        with pytest.raises(QueryBudgetExceeded) as excinfo:
            executor.execute(
                COUNT_SQL, budget=QueryBudget(max_decoded_records=1)
            )
        assert "record" in str(excinfo.value)

    def test_session_budget_marks_truncated_entries(self, repo):
        db = Database()
        lazy_ingest_metadata(db, repo)
        engine = TwoStageExecutor(db, RepositoryBinding(repo))
        session = ExplorationSession(
            engine,
            max_mount_bytes=1,
            on_budget=ON_BUDGET_PARTIAL,
        )
        session.run(COUNT_SQL)
        assert session.history[0].truncated
        assert "(truncated)" in session.report()

    def test_unbudgeted_query_reports_no_truncation(self, repo):
        outcome = _executor(repo).execute(COUNT_SQL)
        assert outcome.truncation is None

    def test_governor_checkpoint_cheap_when_unbounded(self):
        governor = QueryGovernor()
        governor.checkpoint()  # must be a no-op, not a crash
        assert governor.truncation_report() is None
        governor.close()


# -- circuit breaker -------------------------------------------------------------


class _FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestCircuitBreaker:
    def _breaker(self, threshold=3, cooldown=30.0):
        clock = _FakeClock()
        return CircuitBreaker(
            failure_threshold=threshold,
            cooldown_seconds=cooldown,
            clock=clock,
        ), clock

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_seconds=-1)

    def test_opens_at_threshold(self):
        breaker, _ = self._breaker(threshold=3)
        for _ in range(2):
            breaker.record_failure("u")
            assert breaker.allow("u")
        breaker.record_failure("u")
        assert breaker.state_of("u") == CIRCUIT_OPEN
        assert not breaker.allow("u")
        assert breaker.open_uris() == ["u"]

    def test_success_resets_the_score(self):
        breaker, _ = self._breaker(threshold=2)
        breaker.record_failure("u")
        breaker.record_success("u")
        breaker.record_failure("u")
        assert breaker.state_of("u") == CIRCUIT_CLOSED

    def test_half_open_admits_exactly_one_probe(self):
        breaker, clock = self._breaker(threshold=1, cooldown=30.0)
        breaker.record_failure("u")
        assert not breaker.allow("u")
        clock.now = 31.0
        assert breaker.allow("u")  # the probe
        assert breaker.state_of("u") == CIRCUIT_HALF_OPEN
        assert not breaker.allow("u")  # only one at a time

    def test_probe_success_closes(self):
        breaker, clock = self._breaker(threshold=1, cooldown=30.0)
        breaker.record_failure("u")
        clock.now = 31.0
        assert breaker.allow("u")
        breaker.record_success("u")
        assert breaker.state_of("u") == CIRCUIT_CLOSED
        assert breaker.allow("u")

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        breaker, clock = self._breaker(threshold=1, cooldown=30.0)
        breaker.record_failure("u")
        clock.now = 31.0
        assert breaker.allow("u")
        breaker.record_failure("u")
        assert breaker.state_of("u") == CIRCUIT_OPEN
        clock.now = 60.0  # < 31 + 30: still cooling down
        assert not breaker.allow("u")

    def test_likely_blocked_does_not_consume_the_probe(self):
        breaker, clock = self._breaker(threshold=1, cooldown=30.0)
        breaker.record_failure("u")
        assert breaker.likely_blocked("u")
        clock.now = 31.0
        assert not breaker.likely_blocked("u")  # peek only
        assert breaker.state_of("u") == CIRCUIT_OPEN  # state untouched
        assert breaker.allow("u")  # the real probe admission

    def test_refusal_describes_the_circuit(self):
        breaker, _ = self._breaker(threshold=1, cooldown=30.0)
        breaker.record_failure("u", OSError("disk on fire"))
        refusal = breaker.refusal("u")
        assert isinstance(refusal, CircuitOpenError)
        assert refusal.uri == "u"
        assert "1 failure" in str(refusal)
        assert "OSError" in str(refusal)
        assert not refusal.transient  # no retry ladder for refusals

    def test_reset_clears_all_circuits(self):
        breaker, _ = self._breaker(threshold=1)
        breaker.record_failure("u")
        breaker.reset()
        assert breaker.allow("u")
        assert breaker.open_uris() == []

    def test_endpoint_refusal_names_the_endpoint(self):
        breaker, _ = self._breaker(threshold=1)
        breaker.record_failure("seis-eu", OSError("link down"))
        refusal = breaker.refusal(
            "remote://seis-eu/a.xseed", endpoint="seis-eu"
        )
        assert isinstance(refusal, CircuitOpenError)
        assert refusal.uri == "remote://seis-eu/a.xseed"
        assert refusal.endpoint == "seis-eu"
        assert "seis-eu" in str(refusal)


class TestBreakerRegistryBounds:
    """The circuit registry must not grow without bound (satellite: cap +
    idle expiry). One breaker can outlive millions of distinct URIs."""

    def _breaker(self, **kwargs):
        clock = _FakeClock()
        return CircuitBreaker(clock=clock, **kwargs), clock

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(max_circuits=0)
        with pytest.raises(ValueError):
            CircuitBreaker(idle_expiry_seconds=0)

    def test_idle_circuits_expire(self):
        breaker, clock = self._breaker(idle_expiry_seconds=100.0)
        breaker.record_failure("a")
        breaker.record_failure("b")
        assert len(breaker) == 2
        clock.now = 150.0
        breaker.record_failure("c")  # reap runs on the failure path
        assert len(breaker) == 1  # a and b idled out, c is fresh
        assert breaker.evictions == 2

    def test_touch_keeps_a_circuit_alive(self):
        breaker, clock = self._breaker(idle_expiry_seconds=100.0)
        breaker.record_failure("a")
        breaker.record_failure("b")
        clock.now = 90.0
        assert breaker.allow("a")  # touches a, not b
        clock.now = 150.0
        breaker.record_failure("c")
        assert len(breaker) == 2  # a survived via the touch, b expired

    def test_capacity_evicts_least_recent_closed_first(self):
        breaker, clock = self._breaker(
            max_circuits=3, failure_threshold=2, idle_expiry_seconds=1e9
        )
        clock.now = 1.0
        breaker.record_failure("open-1")
        breaker.record_failure("open-1")  # tripped: state open
        clock.now = 2.0
        breaker.record_failure("closed-old")
        clock.now = 3.0
        breaker.record_failure("closed-new")
        clock.now = 4.0
        breaker.record_failure("fresh")  # over capacity: evict one
        assert len(breaker) == 3
        # The least-recently-touched *closed* circuit goes first; open
        # circuits (known-bad endpoints) are the last thing to forget.
        assert breaker.state_of("closed-old") == CIRCUIT_CLOSED  # re-created
        assert breaker.evictions == 1
        assert not breaker.allow("open-1")  # the open circuit survived

    def test_just_failed_circuit_never_self_evicts(self):
        breaker, clock = self._breaker(max_circuits=1, idle_expiry_seconds=1e9)
        for index in range(5):
            clock.now = float(index)
            breaker.record_failure(f"u{index}")
            assert len(breaker) == 1
        # The survivor is always the most recent failure.
        breaker.record_failure("u4")
        breaker.record_failure("u4")
        assert not breaker.allow("u4")


class TestHalfOpenProbeHammer:
    """Satellite: under concurrency, a cooled-down circuit admits exactly
    one probe; every losing thread gets a typed refusal, not a request."""

    def test_exactly_one_probe_under_concurrency(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_seconds=30.0, clock=clock
        )
        breaker.record_failure("seis-eu", OSError("down"))
        clock.now = 31.0  # cooled down: next allow() is the probe

        threads = 16
        barrier = threading.Barrier(threads)
        admitted = []
        refused = []
        lock = threading.Lock()

        def hammer():
            barrier.wait()
            if breaker.allow("seis-eu"):
                with lock:
                    admitted.append(threading.get_ident())
            else:
                refusal = breaker.refusal("seis-eu", endpoint="seis-eu")
                with lock:
                    refused.append(refusal)

        pool = [threading.Thread(target=hammer) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()

        assert len(admitted) == 1, "exactly one probe may pass"
        assert len(refused) == threads - 1
        assert all(isinstance(r, CircuitOpenError) for r in refused)
        assert all(r.endpoint == "seis-eu" for r in refused)
        assert breaker.state_of("seis-eu") == CIRCUIT_HALF_OPEN
        # The probe's success closes the circuit for everyone.
        breaker.record_success("seis-eu")
        assert breaker.state_of("seis-eu") == CIRCUIT_CLOSED
        assert breaker.allow("seis-eu")


class TestRetryBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryBudget(attempts=-1)

    def test_spend_until_dry(self):
        budget = RetryBudget(attempts=3)
        assert [budget.try_spend() for _ in range(4)] == [
            True, True, True, False,
        ]
        assert budget.spent() == 3
        assert budget.remaining() == 0

    def test_reset_refills(self):
        budget = RetryBudget(attempts=1)
        assert budget.try_spend()
        assert not budget.try_spend()
        budget.reset()
        assert budget.try_spend()

    def test_multi_unit_spend_is_all_or_nothing(self):
        budget = RetryBudget(attempts=3)
        assert budget.try_spend(2)
        assert not budget.try_spend(2)  # only 1 left
        assert budget.remaining() == 1
        assert budget.try_spend(1)

    def test_concurrent_spend_never_oversubscribes(self):
        budget = RetryBudget(attempts=64)
        granted = []
        lock = threading.Lock()

        def spender():
            while budget.try_spend():
                with lock:
                    granted.append(1)

        pool = [threading.Thread(target=spender) for _ in range(8)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert len(granted) == 64
        assert budget.spent() == 64


class TestBreakerIntegration:
    def test_failures_open_circuit_across_queries(self, repo):
        clock = _FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_seconds=60.0, clock=clock
        )
        executor = _executor(
            repo, workers=1, on_mount_error="skip", breaker=breaker
        )
        baseline = _executor(repo).execute(COUNT_SQL).rows
        victim = repo.uris()[0]
        plan = FaultPlan(
            [FaultSpec(uri_suffix=victim, kind=TRANSIENT_OSERROR, times=-1)]
        )

        # Query 1: the fault opens the circuit.
        with plan.install():
            first = executor.execute(COUNT_SQL)
        assert victim in first.timings.mount_failures.uris()
        assert breaker.state_of(victim) == CIRCUIT_OPEN

        # Query 2: faults are gone and the file is healthy, but the circuit
        # is still cooling down — the mount is refused without any I/O.
        second = executor.execute(COUNT_SQL)
        assert executor.mounts.stats.breaker_skips >= 1
        failures = second.timings.mount_failures
        assert failures.uris() == [victim]
        assert failures.failures[0].error == "CircuitOpenError"
        assert second.rows != baseline

        # Query 3: past the cooldown, the half-open probe heals the circuit.
        clock.now = 61.0
        third = executor.execute(COUNT_SQL)
        assert third.rows == baseline
        assert breaker.state_of(victim) == CIRCUIT_CLOSED

    def test_fail_fast_refusal_raises_circuit_open(self, repo):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=60.0)
        executor = _executor(repo, workers=1, breaker=breaker)
        victim = repo.uris()[0]
        breaker.record_failure(victim, OSError("seeded"))
        with pytest.raises(CircuitOpenError) as excinfo:
            executor.execute(COUNT_SQL)
        assert excinfo.value.uri == victim
