"""Golden plan snapshots for the EXPERIMENTS workload queries.

Each golden file records the logical plan after every compile-time pass,
the two-stage decomposition with ``Qf`` marked, and the stage-2 plan after
the run-time ALi rewrite (rule (1)). A diff here means a rewrite pass
changed behavior — which must be deliberate.

Regenerate with ``REPRO_UPDATE_GOLDENS=1 pytest tests/test_plan_snapshots.py``
and review the diff like any other code change.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core import TwoStageExecutor, apply_ali_rewrite, decompose
from repro.db import Database
from repro.db.plan.rewrite import (
    cost_based_join_order,
    fuse_top_n,
    metadata_first_join_order,
    prune_columns,
    push_down_selections,
)
from repro.ingest import RepositoryBinding

from conftest import QUERY1, QUERY2

GOLDEN_DIR = Path(__file__).parent / "golden_plans"


def render_snapshot(executor: TwoStageExecutor, sql: str) -> str:
    """The full pass-by-pass plan trajectory of one query, as stable text."""
    db = executor.db
    classify = db.catalog.is_metadata_table
    sections: list[tuple[str, str]] = []

    plan = db.bind_sql(sql)
    sections.append(("bind", plan.explain()))
    plan = push_down_selections(plan)
    sections.append(("push-down-selections", plan.explain()))
    plan = metadata_first_join_order(plan, classify)
    sections.append(("metadata-first-join-order", plan.explain()))
    plan = push_down_selections(plan)
    sections.append(("push-down-selections (2)", plan.explain()))
    plan = fuse_top_n(plan)
    sections.append(("fuse-top-n", plan.explain()))
    plan = cost_based_join_order(plan, executor.statistics(), classify)
    sections.append(("cost-based-join-order", plan.explain()))
    plan = prune_columns(plan)
    sections.append(("prune-columns", plan.explain()))

    decomposition = decompose(plan, classify, executor._uri_column_of)
    sections.append(("decomposition (Qf marked *)", decomposition.explain()))

    if not decomposition.metadata_only:
        ctx = db.make_context(mounter=executor.mounts)
        if decomposition.qf is not None:
            stage1 = db.execute_plan(decomposition.qf, ctx)
            ctx.results[decomposition.result_tag] = stage1.batch
        files_by_alias = executor._files_of_interest(decomposition, ctx)
        files_by_alias, _ = executor._prune_by_time(
            decomposition, files_by_alias
        )
        assert decomposition.qs is not None
        rewritten = apply_ali_rewrite(
            decomposition.qs,
            files_by_alias,
            executor.cache,
            time_column=executor.mounts.time_column,
        )
        sections.append(("stage-2 after ALi rewrite (rule 1)", rewritten.explain()))

    blocks = [f"== {title} ==\n{body}" for title, body in sections]
    return "\n\n".join(blocks) + "\n"


def _check_golden(name: str, actual: str) -> None:
    golden_path = GOLDEN_DIR / f"{name}.txt"
    if os.environ.get("REPRO_UPDATE_GOLDENS"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        golden_path.write_text(actual, encoding="utf-8")
        return
    assert golden_path.exists(), (
        f"missing golden file {golden_path}; run with REPRO_UPDATE_GOLDENS=1 "
        "to create it"
    )
    expected = golden_path.read_text(encoding="utf-8")
    assert actual == expected, (
        f"plan snapshot for {name!r} changed; if intentional, regenerate "
        f"with REPRO_UPDATE_GOLDENS=1 and review the diff\n--- actual ---\n"
        f"{actual}"
    )


@pytest.mark.parametrize(
    "name,sql",
    [("query1", QUERY1), ("query2", QUERY2)],
    ids=["query1", "query2"],
)
def test_workload_plan_snapshots(ali_db, tiny_repo, name, sql):
    executor = TwoStageExecutor(ali_db, RepositoryBinding(tiny_repo))
    _check_golden(name, render_snapshot(executor, sql))


def test_metadata_only_snapshot(ali_db, tiny_repo):
    sql = (
        "SELECT F.station, COUNT(*) AS files FROM F "
        "GROUP BY F.station ORDER BY F.station"
    )
    executor = TwoStageExecutor(ali_db, RepositoryBinding(tiny_repo))
    _check_golden("metadata_only", render_snapshot(executor, sql))


def test_top_n_snapshot(ali_db, tiny_repo):
    """Pins the fuse-top-n and cost-based-join-order passes end to end."""
    sql = (
        "SELECT D.sample_time, D.sample_value FROM F "
        "JOIN R ON F.uri = R.uri "
        "JOIN D ON R.uri = D.uri AND R.record_id = D.record_id "
        "WHERE F.station = 'ISK' "
        "ORDER BY D.sample_time DESC LIMIT 5"
    )
    executor = TwoStageExecutor(ali_db, RepositoryBinding(tiny_repo))
    _check_golden("topn", render_snapshot(executor, sql))


def test_snapshot_is_deterministic(ali_db, tiny_repo):
    executor = TwoStageExecutor(ali_db, RepositoryBinding(tiny_repo))
    first = render_snapshot(executor, QUERY1)
    second = render_snapshot(executor, QUERY1)
    assert first == second
