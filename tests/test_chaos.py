"""Seeded chaos testing: the engine's answers must not depend on the noise.

The grid runs one fixed-seed fault plan against every combination of
``mount_workers`` × ``on_mount_error`` × ``selective`` and asserts the
answer is byte-identical to the fault-free baseline — recoverable faults
(transient I/O errors, read latency, mid-extraction rewrites) are exactly
the ones the retry ladder and staleness re-validation exist to absorb, so
any divergence is a resilience bug, not test noise.

Unrecoverable faults are the complement: they must *surface*, with the
offending URI attached, under every combination.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core import TwoStageExecutor
from repro.db import Database
from repro.db.errors import FileIngestError
from repro.ingest import RepositoryBinding, lazy_ingest_metadata
from repro.mseed import FileRepository, RepositorySpec, generate_repository
from repro.testing import (
    RECOVERABLE_KINDS,
    TRANSIENT_OSERROR,
    FaultPlan,
    FaultSpec,
)

CHAOS_SEED = 20130610  # fixed: CI smoke replays exactly this fault plan

SPEC = RepositorySpec(
    stations=("ISK", "ANK"),
    channels=("BHE", "BHZ"),
    days=2,
    sample_rate=0.02,
    samples_per_record=500,
)

# A query that exercises both stages, grouping, and (when enabled) the
# record-granular selective path via the sample-time interval.
CHAOS_SQL = (
    "SELECT F.station, COUNT(*) AS n, SUM(D.sample_value) AS s\n"
    "FROM F JOIN D ON F.uri = D.uri\n"
    "WHERE D.sample_time > '2010-01-10T06:00:00.000'\n"
    "AND D.sample_time < '2010-01-11T18:00:00.000'\n"
    "GROUP BY F.station ORDER BY F.station"
)

GRID = list(
    itertools.product(
        (1, 4),  # mount_workers
        ("fail", "skip"),  # on_mount_error
        (True, False),  # selective mounting
    )
)


@pytest.fixture(scope="module")
def repo(tmp_path_factory):
    root = tmp_path_factory.mktemp("chaos_repo")
    generate_repository(root, SPEC)
    return FileRepository(root)


def _executor(repo, workers=1, policy="fail", selective=True):
    db = Database()
    lazy_ingest_metadata(db, repo)
    return TwoStageExecutor(
        db,
        RepositoryBinding(repo),
        mount_workers=workers,
        on_mount_error=policy,
        selective_mounts=selective,
    )


@pytest.fixture(scope="module")
def baseline(repo):
    return _executor(repo).execute(CHAOS_SQL).rows


class TestChaosGrid:
    @pytest.mark.parametrize("workers,policy,selective", GRID)
    def test_recoverable_faults_byte_identical(
        self, repo, baseline, workers, policy, selective
    ):
        plan = FaultPlan.seeded(
            CHAOS_SEED,
            repo.uris(),
            kinds=RECOVERABLE_KINDS,
            fault_rate=1.0,  # every file takes a hit
            times=1,  # within the retry budget: must be absorbed
        )
        assert plan.specs, "seeded plan unexpectedly empty"
        executor = _executor(
            repo, workers=workers, policy=policy, selective=selective
        )
        with plan.install():
            outcome = executor.execute(CHAOS_SQL)
        assert outcome.rows == baseline
        assert not outcome.timings.mount_failures
        assert outcome.truncation is None

    @pytest.mark.parametrize("workers,selective", [
        (w, s) for w in (1, 4) for s in (True, False)
    ])
    def test_unrecoverable_fault_surfaces_uri_fail_fast(
        self, repo, workers, selective
    ):
        victim = repo.uris()[2]
        plan = FaultPlan(
            [FaultSpec(uri_suffix=victim, kind=TRANSIENT_OSERROR, times=-1)]
        )
        executor = _executor(
            repo, workers=workers, policy="fail", selective=selective
        )
        with plan.install():
            with pytest.raises(FileIngestError) as excinfo:
                executor.execute(CHAOS_SQL)
        assert excinfo.value.mount_uri == victim

    @pytest.mark.parametrize("workers,selective", [
        (w, s) for w in (1, 4) for s in (True, False)
    ])
    def test_unrecoverable_fault_skipped_and_reported(
        self, repo, baseline, workers, selective
    ):
        victim = repo.uris()[2]
        plan = FaultPlan(
            [FaultSpec(uri_suffix=victim, kind=TRANSIENT_OSERROR, times=-1)]
        )
        executor = _executor(
            repo, workers=workers, policy="skip", selective=selective
        )
        with plan.install():
            outcome = executor.execute(CHAOS_SQL)
        assert outcome.timings.mount_failures.uris() == [victim]
        # Degraded, not wrong: the answer is the baseline minus one file.
        assert outcome.rows != baseline
        total = sum(row[1] for row in outcome.rows)
        baseline_total = sum(row[1] for row in baseline)
        assert total < baseline_total

    def test_same_seed_same_grid_cell_same_log(self, repo):
        def run():
            executor = _executor(repo, workers=4, policy="skip")
            plan = FaultPlan.seeded(
                CHAOS_SEED,
                repo.uris(),
                kinds=RECOVERABLE_KINDS,
                fault_rate=1.0,
                times=1,
            )
            with plan.install():
                executor.execute(CHAOS_SQL)
            return plan.signature()

        assert run() == run()
