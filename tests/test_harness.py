"""Tests for the experiment harness (at integration-test scale)."""

import pytest

from repro.harness import (
    build_environment,
    ingestion_report,
    interest_sweep,
    render_figure3,
    render_table1,
    run_cold,
    run_figure3,
    run_hot,
    run_table1,
    tiny_spec,
)
from repro.harness.reporting import render_ingestion, render_sweep
from repro.explore.workload import sweep_queries


@pytest.fixture(scope="module")
def env(tmp_path_factory):
    return build_environment(
        tiny_spec(), cache_root=tmp_path_factory.mktemp("bench_repo")
    )


class TestEnvironment:
    def test_repository_cached_between_builds(self, env, tmp_path_factory):
        again = build_environment(
            env.spec, cache_root=env.repository.root.parent
        )
        assert again.repository.root == env.repository.root

    def test_queries_instantiated(self, env):
        assert "AVG" in env.queries.query1
        assert "sample_time" in env.queries.query2

    def test_both_systems_loaded(self, env):
        assert env.ei.catalog.table("D").num_rows > 0
        assert env.ali.catalog.table("D").num_rows == 0


class TestTable1:
    def test_counts_match_repository(self, env):
        row = run_table1(env)
        assert row.f_records == len(env.repository)
        assert row.d_records == env.ei.catalog.table("D").num_rows
        assert row.mseed_bytes == env.repository.total_bytes()

    def test_size_relationships(self, env):
        """The shape of the paper's Table 1: DB storage ≫ compressed files;
        ALi metadata ≪ everything else."""
        row = run_table1(env)
        assert row.monetdb_bytes > 2 * row.mseed_bytes
        assert row.keys_bytes > 0
        assert row.ali_bytes * 50 < row.monetdb_bytes

    def test_rendering(self, env):
        text = render_table1(run_table1(env))
        assert "mSEED" in text and "ALi" in text


class TestFigure3:
    def test_all_eight_bars(self, env):
        entries = run_figure3(env, runs=1)
        assert len(entries) == 8
        combos = {(e.query, e.system, e.state) for e in entries}
        assert len(combos) == 8

    def test_cold_ali_beats_cold_ei(self, env):
        """The headline claim: for cold runs ALi definitely outperforms Ei."""
        entries = run_figure3(env, runs=1)
        by_key = {(e.query, e.system, e.state): e.seconds for e in entries}
        for query in ("Query 1", "Query 2"):
            assert by_key[(query, "ALi", "COLD")] < by_key[(query, "Ei", "COLD")]

    def test_rendering(self, env):
        text = render_figure3(run_figure3(env, runs=1), len(env.repository))
        assert "Query 1" in text and "COLD" in text

    def test_cold_slower_than_hot(self, env):
        sql = env.queries.query1
        cold = run_cold(env.ei, sql, runs=1)
        hot = run_hot(env.ei, sql, runs=1)
        assert cold > hot


class TestIngestionReport:
    def test_speedup_orders_of_magnitude(self, env):
        report = ingestion_report(env)
        # Integration-test scale: per-file Python overhead dominates both
        # loads, so only a loose ratio is stable here; the paper's
        # orders-of-magnitude claim is asserted at benchmark scale in
        # benchmarks/bench_ingestion.py.
        assert report.speedup > 2
        assert report.space_ratio > 50
        assert report.ali_load_seconds < report.ei_load_seconds

    def test_rendering(self, env):
        assert "initialization speedup" in render_ingestion(ingestion_report(env))


class TestInterestSweep:
    def test_seconds_grow_with_fraction(self, env):
        queries = sweep_queries(
            list(env.spec.stations),
            list(env.spec.channels),
            env.spec.start_day,
            f"{env.spec.start_day}T10:00:00",
            f"{env.spec.start_day}T11:00:00",
            fractions=[0.0, 1.0],
        )
        entries = interest_sweep(env, queries)
        assert entries[0].files_of_interest == 0
        assert entries[-1].files_of_interest > 0
        assert entries[0].seconds < entries[-1].seconds

    def test_rendering(self, env):
        queries = sweep_queries(
            list(env.spec.stations), list(env.spec.channels),
            env.spec.start_day,
            f"{env.spec.start_day}T10:00:00",
            f"{env.spec.start_day}T11:00:00",
            fractions=[0.0],
        )
        text = render_sweep(interest_sweep(env, queries))
        assert "fraction" in text
