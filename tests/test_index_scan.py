"""Tests for the index-scan access path."""

import pytest

from repro.db import ColumnDef, Database, DataType, TableSchema
from repro.db.plan.optimizer import PhysicalPlanner
from repro.db.plan.physical import PIndexScan


@pytest.fixture()
def db():
    db = Database()
    db.create_table(
        TableSchema(
            "t",
            [
                ColumnDef("k", DataType.INT64),
                ColumnDef("s", DataType.STRING),
                ColumnDef("v", DataType.FLOAT64),
            ],
            primary_key=("k",),
        )
    )
    db.create_table(
        TableSchema(
            "composite",
            [
                ColumnDef("a", DataType.STRING),
                ColumnDef("b", DataType.INT64),
                ColumnDef("v", DataType.FLOAT64),
            ],
            primary_key=("a", "b"),
        )
    )
    db.insert_rows("t", [(i, f"s{i % 3}", float(i)) for i in range(20)])
    db.insert_rows(
        "composite",
        [("x", 1, 1.0), ("x", 2, 2.0), ("y", 1, 3.0)],
    )
    db.build_key_indexes("t")
    db.build_key_indexes("composite")
    return db


def planned(db, sql):
    plan = db.optimize(db.bind_sql(sql))
    return PhysicalPlanner(db.catalog).plan(plan)


def has_index_scan(op):
    if isinstance(op, PIndexScan):
        return True
    return any(
        has_index_scan(getattr(op, attr))
        for attr in ("child", "left", "right", "probe")
        if hasattr(op, attr)
    )


class TestPlanning:
    def test_pk_equality_uses_index_scan(self, db):
        op = planned(db, "SELECT v FROM t WHERE k = 7")
        assert has_index_scan(op)

    def test_range_predicate_does_not(self, db):
        op = planned(db, "SELECT v FROM t WHERE k > 7")
        assert not has_index_scan(op)

    def test_partial_composite_key_does_not(self, db):
        op = planned(db, "SELECT v FROM composite WHERE a = 'x'")
        assert not has_index_scan(op)

    def test_full_composite_key_does(self, db):
        op = planned(db, "SELECT v FROM composite WHERE a = 'x' AND b = 2")
        assert has_index_scan(op)

    def test_disabled_indexes(self, db):
        plan = db.optimize(db.bind_sql("SELECT v FROM t WHERE k = 7"))
        op = PhysicalPlanner(db.catalog, use_indexes=False).plan(plan)
        assert not has_index_scan(op)


class TestResults:
    def test_pk_lookup(self, db):
        assert db.execute("SELECT v FROM t WHERE k = 7").rows() == [(7.0,)]

    def test_absent_key_empty(self, db):
        assert db.execute("SELECT v FROM t WHERE k = 999").rows() == []

    def test_extra_conjuncts_still_applied(self, db):
        assert db.execute(
            "SELECT v FROM t WHERE k = 7 AND v > 100.0"
        ).rows() == []

    def test_composite_lookup(self, db):
        assert db.execute(
            "SELECT v FROM composite WHERE a = 'x' AND b = 2"
        ).rows() == [(2.0,)]

    def test_matches_full_scan(self, db):
        sql = "SELECT v FROM t WHERE k = 13 AND s = 's1'"
        assert (
            db.execute(sql, use_indexes=True).rows()
            == db.execute(sql, use_indexes=False).rows()
        )

    def test_index_object_touched(self, db):
        db.make_cold()
        result = db.execute("SELECT v FROM t WHERE k = 3")
        assert any(name.startswith("index:t") for name in result.io.touched)

    def test_string_key_absent_from_dictionary(self, db):
        assert db.execute(
            "SELECT v FROM composite WHERE a = 'zz' AND b = 1"
        ).rows() == []
