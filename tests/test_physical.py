"""Tests for physical operators: joins, aggregation, sort, distinct, limit.

Each operator's output is checked against a straightforward Python
re-implementation over the same rows.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.db import ColumnDef, Database, DataType, TableSchema


@pytest.fixture()
def db():
    db = Database()
    db.create_table(
        TableSchema(
            "L",
            [
                ColumnDef("k", DataType.INT64),
                ColumnDef("s", DataType.STRING),
                ColumnDef("v", DataType.FLOAT64),
            ],
        )
    )
    db.create_table(
        TableSchema(
            "Rt",
            [ColumnDef("k", DataType.INT64), ColumnDef("w", DataType.INT64)],
        )
    )
    db.insert_rows("L", [
        (1, "a", 1.0), (2, "b", 2.0), (2, "b", 3.0), (3, "c", 4.0),
    ])
    db.insert_rows("Rt", [(2, 20), (2, 21), (3, 30), (4, 40)])
    return db


class TestHashJoin:
    def test_inner_join_multiplicity(self, db):
        rows = db.execute(
            "SELECT L.k, L.v, Rt.w FROM L JOIN Rt ON L.k = Rt.k "
            "ORDER BY L.v, Rt.w"
        ).rows()
        assert rows == [
            (2, 2.0, 20), (2, 2.0, 21), (2, 3.0, 20), (2, 3.0, 21),
            (3, 4.0, 30),
        ]

    def test_empty_join(self, db):
        rows = db.execute(
            "SELECT L.k FROM L JOIN Rt ON L.k = Rt.w"
        ).rows()
        assert rows == []

    def test_string_join_keys(self, db):
        db.create_table(
            TableSchema("S2", [ColumnDef("s", DataType.STRING),
                               ColumnDef("tag", DataType.STRING)])
        )
        db.insert_rows("S2", [("b", "beta"), ("c", "gamma"), ("z", "zeta")])
        rows = db.execute(
            "SELECT L.s, S2.tag FROM L JOIN S2 ON L.s = S2.s ORDER BY L.v"
        ).rows()
        assert rows == [("b", "beta"), ("b", "beta"), ("c", "gamma")]

    def test_join_with_residual_condition(self, db):
        rows = db.execute(
            "SELECT L.v, Rt.w FROM L JOIN Rt ON L.k = Rt.k AND Rt.w > 20 "
            "ORDER BY L.v, Rt.w"
        ).rows()
        assert rows == [(2.0, 21), (3.0, 21), (4.0, 30)]


class TestNestedLoopJoin:
    def test_cross_product(self, db):
        result = db.execute("SELECT L.k, Rt.k FROM L, Rt")
        assert result.num_rows == 16

    def test_non_equi_condition(self, db):
        rows = db.execute(
            "SELECT L.k, Rt.k FROM L JOIN Rt ON L.k < Rt.k "
            "ORDER BY L.k, Rt.k"
        ).rows()
        expected = [
            (lk, rk)
            for lk in [1, 2, 2, 3]
            for rk in [2, 2, 3, 4]
            if lk < rk
        ]
        assert sorted(rows) == sorted(expected)


class TestIndexJoin:
    def test_index_join_used_and_correct(self, db):
        db.create_table(
            TableSchema(
                "Keyed",
                [ColumnDef("k", DataType.INT64), ColumnDef("tag", DataType.STRING)],
                primary_key=("k",),
            )
        )
        db.insert_rows("Keyed", [(1, "one"), (2, "two"), (3, "three")])
        db.build_key_indexes("Keyed")
        result = db.execute(
            "SELECT L.v, Keyed.tag FROM L JOIN Keyed ON L.k = Keyed.k "
            "ORDER BY L.v"
        )
        assert result.rows() == [
            (1.0, "one"), (2.0, "two"), (3.0, "two"), (4.0, "three"),
        ]
        # The index object was touched in the buffer manager.
        assert any("index:keyed" in name for name in result.io.touched)

    def test_disabled_indexes_give_same_answer(self, db):
        db.create_table(
            TableSchema(
                "Keyed2",
                [ColumnDef("k", DataType.INT64), ColumnDef("tag", DataType.STRING)],
                primary_key=("k",),
            )
        )
        db.insert_rows("Keyed2", [(2, "x"), (3, "y")])
        db.build_key_indexes("Keyed2")
        sql = (
            "SELECT L.v, Keyed2.tag FROM L JOIN Keyed2 ON L.k = Keyed2.k "
            "ORDER BY L.v"
        )
        assert (
            db.execute(sql, use_indexes=True).rows()
            == db.execute(sql, use_indexes=False).rows()
        )


class TestAggregation:
    def test_scalar_aggregates(self, db):
        row = db.execute(
            "SELECT COUNT(*), SUM(v), AVG(v), MIN(v), MAX(v) FROM L"
        ).rows()[0]
        assert row == (4, 10.0, 2.5, 1.0, 4.0)

    def test_group_by_string(self, db):
        rows = db.execute(
            "SELECT s, COUNT(*), SUM(v) FROM L GROUP BY s ORDER BY s"
        ).rows()
        assert rows == [("a", 1, 1.0), ("b", 2, 5.0), ("c", 1, 4.0)]

    def test_group_by_multiple_keys(self, db):
        rows = db.execute(
            "SELECT k, s, COUNT(*) FROM L GROUP BY k, s ORDER BY k"
        ).rows()
        assert rows == [(1, "a", 1), (2, "b", 2), (3, "c", 1)]

    def test_count_distinct(self, db):
        row = db.execute("SELECT COUNT(DISTINCT k) FROM L").rows()[0]
        assert row == (3,)

    def test_sum_distinct(self, db):
        db.insert_rows("Rt", [(2, 20)])  # duplicate w=20
        row = db.execute("SELECT SUM(DISTINCT w) FROM Rt").rows()[0]
        assert row == (20 + 21 + 30 + 40,)

    def test_min_max_strings(self, db):
        row = db.execute("SELECT MIN(s), MAX(s) FROM L").rows()[0]
        assert row == ("a", "c")

    def test_empty_input_scalar_aggregate(self, db):
        row = db.execute(
            "SELECT COUNT(*), SUM(k), AVG(v) FROM L WHERE k > 100"
        ).rows()[0]
        assert row[0] == 0
        assert row[1] == 0  # documented no-NULL simplification
        assert math.isnan(row[2])

    def test_empty_input_grouped_aggregate(self, db):
        rows = db.execute(
            "SELECT s, COUNT(*) FROM L WHERE k > 100 GROUP BY s"
        ).rows()
        assert rows == []

    def test_having_filters_groups(self, db):
        rows = db.execute(
            "SELECT s, COUNT(*) FROM L GROUP BY s HAVING COUNT(*) > 1"
        ).rows()
        assert rows == [("b", 2)]

    def test_min_max_timestamps(self, db):
        db.create_table(
            TableSchema("T", [ColumnDef("ts", DataType.TIMESTAMP)])
        )
        db.insert_rows("T", [("2010-01-01",), ("2010-01-03",), ("2010-01-02",)])
        row = db.execute("SELECT MIN(ts), MAX(ts) FROM T").rows()[0]
        from repro.db import parse_timestamp

        assert row == (parse_timestamp("2010-01-01"), parse_timestamp("2010-01-03"))


class TestSortDistinctLimit:
    def test_multi_key_sort(self, db):
        rows = db.execute("SELECT k, v FROM L ORDER BY k DESC, v ASC").rows()
        assert rows == [(3, 4.0), (2, 2.0), (2, 3.0), (1, 1.0)]

    def test_sort_strings(self, db):
        rows = db.execute("SELECT s FROM L ORDER BY s DESC").rows()
        assert [r[0] for r in rows] == ["c", "b", "b", "a"]

    def test_distinct(self, db):
        rows = db.execute("SELECT DISTINCT k FROM L ORDER BY k").rows()
        assert rows == [(1,), (2,), (3,)]

    def test_distinct_multi_column(self, db):
        rows = db.execute("SELECT DISTINCT k, s FROM L").rows()
        assert len(rows) == 3

    def test_limit(self, db):
        rows = db.execute("SELECT v FROM L ORDER BY v DESC LIMIT 2").rows()
        assert rows == [(4.0,), (3.0,)]

    def test_limit_larger_than_input(self, db):
        assert db.execute("SELECT v FROM L LIMIT 100").num_rows == 4

    def test_order_by_expression(self, db):
        rows = db.execute("SELECT v FROM L ORDER BY 0 - v").rows()
        assert [r[0] for r in rows] == [4.0, 3.0, 2.0, 1.0]


@settings(deadline=None, max_examples=25)
@given(
    left=st.lists(
        st.tuples(st.integers(0, 5), st.integers(-10, 10)),
        max_size=30,
    ),
    right=st.lists(
        st.tuples(st.integers(0, 5), st.integers(-10, 10)),
        max_size=30,
    ),
)
def test_hash_join_matches_python(left, right):
    db = Database()
    db.create_table(
        TableSchema("A", [ColumnDef("k", DataType.INT64),
                          ColumnDef("x", DataType.INT64)])
    )
    db.create_table(
        TableSchema("B", [ColumnDef("k", DataType.INT64),
                          ColumnDef("y", DataType.INT64)])
    )
    if left:
        db.insert_rows("A", left)
    if right:
        db.insert_rows("B", right)
    got = db.execute("SELECT A.k, A.x, B.y FROM A JOIN B ON A.k = B.k").rows()
    expected = [
        (lk, lx, ry) for lk, lx in left for rk, ry in right if lk == rk
    ]
    assert sorted(got) == sorted(expected)


@settings(deadline=None, max_examples=25)
@given(
    rows=st.lists(
        st.tuples(st.integers(0, 4), st.integers(-100, 100)),
        min_size=1,
        max_size=50,
    )
)
def test_group_by_matches_python(rows):
    db = Database()
    db.create_table(
        TableSchema("G", [ColumnDef("g", DataType.INT64),
                          ColumnDef("x", DataType.INT64)])
    )
    db.insert_rows("G", rows)
    got = db.execute(
        "SELECT g, COUNT(*), SUM(x), MIN(x), MAX(x) FROM G GROUP BY g ORDER BY g"
    ).rows()
    expected = []
    for g in sorted({g for g, _ in rows}):
        xs = [x for gg, x in rows if gg == g]
        expected.append((g, len(xs), sum(xs), min(xs), max(xs)))
    assert got == expected
