"""End-to-end tests for the Database facade and buffer accounting."""

import pytest

from repro.db import (
    Catalog,
    ColumnDef,
    Database,
    DataType,
    DiskModel,
    TableKind,
    TableSchema,
)
from repro.db.errors import CatalogError


@pytest.fixture()
def db():
    db = Database()
    db.create_table(
        TableSchema(
            "t",
            [
                ColumnDef("k", DataType.INT64),
                ColumnDef("s", DataType.STRING),
                ColumnDef("v", DataType.FLOAT64),
            ],
        )
    )
    db.insert_rows("t", [(1, "a", 1.5), (2, "b", 2.5), (3, "a", 3.5)])
    return db


class TestQueryResult:
    def test_rows_and_columns(self, db):
        result = db.execute("SELECT k, s FROM t ORDER BY k")
        assert result.rows() == [(1, "a"), (2, "b"), (3, "a")]
        assert result.column("s") == ["a", "b", "a"]
        assert result.num_rows == 3

    def test_scalar(self, db):
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 3

    def test_scalar_rejects_non_scalar(self, db):
        with pytest.raises(CatalogError):
            db.execute("SELECT k FROM t").scalar()

    def test_pretty_renders(self, db):
        text = db.execute("SELECT k, v FROM t ORDER BY k").pretty()
        assert "k" in text and "1" in text

    def test_pretty_truncates(self, db):
        text = db.execute("SELECT k FROM t").pretty(limit=1)
        assert "more rows" in text

    def test_total_seconds_includes_io(self, db):
        result = db.execute("SELECT k FROM t")
        assert result.total_seconds >= result.elapsed_cpu


class TestBufferAccounting:
    def test_cold_then_hot(self):
        db = Database(DiskModel(seek_seconds=0.01))
        db.create_table(TableSchema("t", [ColumnDef("k", DataType.INT64)]))
        db.insert_rows("t", [(i,) for i in range(100)])
        db.make_cold()
        cold = db.execute("SELECT COUNT(*) FROM t")
        assert cold.io.objects_read == 1
        assert cold.io.simulated_seconds > 0
        hot = db.execute("SELECT COUNT(*) FROM t")
        assert hot.io.objects_read == 0
        assert hot.io.simulated_seconds == 0

    def test_warm_all(self):
        db = Database()
        db.create_table(TableSchema("t", [ColumnDef("k", DataType.INT64)]))
        db.insert_rows("t", [(1,)])
        db.warm_all()
        result = db.execute("SELECT k FROM t")
        assert result.io.objects_read == 0

    def test_pruning_reduces_io(self):
        db = Database()
        db.create_table(
            TableSchema(
                "wide",
                [ColumnDef(f"c{i}", DataType.INT64) for i in range(6)],
            )
        )
        db.insert_rows("wide", [tuple(range(6))])
        db.make_cold()
        result = db.execute("SELECT c0 FROM wide")
        assert result.io.objects_read == 1  # only one column touched


class TestCatalog:
    def test_duplicate_table_rejected(self, db):
        with pytest.raises(CatalogError):
            db.create_table(TableSchema("t", [ColumnDef("x", DataType.INT64)]))

    def test_drop_table(self, db):
        db.catalog.drop_table("t")
        assert not db.catalog.has_table("t")
        with pytest.raises(CatalogError):
            db.catalog.table("t")

    def test_metadata_actual_partition(self):
        catalog = Catalog()
        catalog.create_table(
            TableSchema("m", [ColumnDef("x", DataType.INT64)],
                        kind=TableKind.METADATA)
        )
        catalog.create_table(
            TableSchema("a", [ColumnDef("x", DataType.INT64)],
                        kind=TableKind.ACTUAL)
        )
        assert [t.name for t in catalog.metadata_tables()] == ["m"]
        assert [t.name for t in catalog.actual_tables()] == ["a"]
        assert catalog.is_metadata_table("m")
        assert not catalog.is_metadata_table("a")

    def test_drop_removes_indexes(self, db):
        db.create_table(
            TableSchema("pk", [ColumnDef("k", DataType.INT64)],
                        primary_key=("k",))
        )
        db.insert_rows("pk", [(1,)])
        db.build_key_indexes("pk")
        assert db.index_nbytes() > 0
        db.catalog.drop_table("pk")
        assert db.index_nbytes() == 0

    def test_build_key_indexes_idempotent(self, db):
        db.create_table(
            TableSchema("pk2", [ColumnDef("k", DataType.INT64)],
                        primary_key=("k",))
        )
        db.insert_rows("pk2", [(1,)])
        db.build_key_indexes("pk2")
        before = db.index_nbytes()
        db.build_key_indexes("pk2")
        assert db.index_nbytes() == before


class TestExplain:
    def test_explain_mentions_operators(self, db):
        text = db.explain("SELECT s, COUNT(*) FROM t GROUP BY s")
        assert "Aggregate" in text and "Scan(t)" in text

    def test_execute_complex_query(self, db):
        rows = db.execute(
            "SELECT s, COUNT(*) AS n, AVG(v) FROM t WHERE k < 3 "
            "GROUP BY s ORDER BY s"
        ).rows()
        assert rows == [("a", 1, 1.5), ("b", 1, 2.5)]

    def test_expression_projection(self, db):
        rows = db.execute("SELECT k * 2 + 1 AS kk FROM t ORDER BY k").rows()
        assert rows == [(3,), (5,), (7,)]
