"""Tests for typed expressions and their vectorized evaluation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.db import Column, ColumnBatch, DataType
from repro.db.errors import TypeError_
from repro.db.expr import (
    Arithmetic,
    BoolOp,
    ColumnRef,
    Comparison,
    FuncCall,
    Literal,
    Negate,
    Not,
    conjoin,
    conjuncts,
)


def batch():
    return ColumnBatch(
        ["t.x", "t.y", "t.s", "t.ts"],
        [
            Column.from_pylist(DataType.INT64, [1, 2, 3, 4]),
            Column.from_pylist(DataType.FLOAT64, [1.5, -2.0, 0.0, 4.0]),
            Column.from_pylist(DataType.STRING, ["a", "b", "a", "c"]),
            Column.from_pylist(DataType.TIMESTAMP, [0, 1_000_000, 2_000_000, 3_000_000]),
        ],
    )


def x():
    return ColumnRef("t.x", DataType.INT64)


def s():
    return ColumnRef("t.s", DataType.STRING)


class TestLiteral:
    def test_infer_types(self):
        assert Literal.infer(1).dtype is DataType.INT64
        assert Literal.infer(1.5).dtype is DataType.FLOAT64
        assert Literal.infer("x").dtype is DataType.STRING
        assert Literal.infer(True).dtype is DataType.BOOL

    def test_infer_rejects_unknown(self):
        with pytest.raises(TypeError_):
            Literal.infer(object())

    def test_as_timestamp(self):
        lit = Literal.infer("1970-01-01T00:00:01").as_timestamp()
        assert lit.dtype is DataType.TIMESTAMP
        assert lit.value == 1_000_000

    def test_as_timestamp_rejects_non_timestamp(self):
        with pytest.raises(TypeError_):
            Literal.infer("hello").as_timestamp()

    def test_evaluate_broadcasts(self):
        col = Literal.infer(7).evaluate(batch())
        assert col.to_pylist() == [7, 7, 7, 7]


class TestComparison:
    def test_int_comparison(self):
        mask = Comparison(">", x(), Literal.infer(2)).evaluate(batch())
        assert mask.to_pylist() == [False, False, True, True]

    def test_string_equality_fast_path(self):
        mask = Comparison("=", s(), Literal.infer("a")).evaluate(batch())
        assert mask.to_pylist() == [True, False, True, False]

    def test_string_equality_absent_value(self):
        mask = Comparison("=", s(), Literal.infer("zzz")).evaluate(batch())
        assert mask.to_pylist() == [False] * 4

    def test_string_inequality(self):
        mask = Comparison("<>", s(), Literal.infer("a")).evaluate(batch())
        assert mask.to_pylist() == [False, True, False, True]

    def test_string_ordering_decodes(self):
        mask = Comparison("<", s(), Literal.infer("b")).evaluate(batch())
        assert mask.to_pylist() == [True, False, True, False]

    def test_timestamp_vs_string_literal_coerced(self):
        ts = ColumnRef("t.ts", DataType.TIMESTAMP)
        mask = Comparison(
            ">", ts, Literal.infer("1970-01-01T00:00:01")
        ).evaluate(batch())
        assert mask.to_pylist() == [False, False, True, True]

    def test_incompatible_types_rejected(self):
        with pytest.raises(TypeError_):
            Comparison("=", x(), Literal.infer("a"))

    def test_unknown_operator(self):
        with pytest.raises(TypeError_):
            Comparison("~", x(), x())

    def test_references(self):
        comp = Comparison("=", x(), s()) if False else Comparison("=", x(), Literal.infer(1))
        assert comp.references() == {"t.x"}


class TestBoolOps:
    def test_and_or(self):
        gt1 = Comparison(">", x(), Literal.infer(1))
        lt4 = Comparison("<", x(), Literal.infer(4))
        both = BoolOp("and", [gt1, lt4]).evaluate(batch())
        assert both.to_pylist() == [False, True, True, False]
        either = BoolOp("or", [gt1, Not(lt4)]).evaluate(batch())
        assert either.to_pylist() == [False, True, True, True]

    def test_not(self):
        gt1 = Comparison(">", x(), Literal.infer(1))
        assert Not(gt1).evaluate(batch()).to_pylist() == [True, False, False, False]

    def test_requires_boolean_operands(self):
        with pytest.raises(TypeError_):
            BoolOp("and", [x()])
        with pytest.raises(TypeError_):
            Not(x())

    def test_empty_operands_rejected(self):
        with pytest.raises(TypeError_):
            BoolOp("or", [])


class TestArithmetic:
    def test_int_arithmetic(self):
        expr = Arithmetic("+", x(), Literal.infer(10))
        assert expr.dtype is DataType.INT64
        assert expr.evaluate(batch()).to_pylist() == [11, 12, 13, 14]

    def test_division_is_float(self):
        expr = Arithmetic("/", x(), Literal.infer(2))
        assert expr.dtype is DataType.FLOAT64
        assert expr.evaluate(batch()).to_pylist() == [0.5, 1.0, 1.5, 2.0]

    def test_modulo(self):
        expr = Arithmetic("%", x(), Literal.infer(2))
        assert expr.evaluate(batch()).to_pylist() == [1, 0, 1, 0]

    def test_timestamp_difference_is_int(self):
        ts = ColumnRef("t.ts", DataType.TIMESTAMP)
        expr = Arithmetic("-", ts, ts)
        assert expr.dtype is DataType.INT64

    def test_timestamp_plus_int_is_timestamp(self):
        ts = ColumnRef("t.ts", DataType.TIMESTAMP)
        expr = Arithmetic("+", ts, Literal.infer(1_000_000))
        assert expr.dtype is DataType.TIMESTAMP
        assert expr.evaluate(batch()).to_pylist()[0] == 1_000_000

    def test_timestamp_times_int_rejected(self):
        ts = ColumnRef("t.ts", DataType.TIMESTAMP)
        with pytest.raises(TypeError_):
            Arithmetic("*", ts, Literal.infer(2))

    def test_string_arithmetic_rejected(self):
        with pytest.raises(TypeError_):
            Arithmetic("+", s(), Literal.infer(1))

    def test_negate(self):
        assert Negate(x()).evaluate(batch()).to_pylist() == [-1, -2, -3, -4]
        with pytest.raises(TypeError_):
            Negate(s())


class TestFuncCall:
    def test_abs(self):
        y = ColumnRef("t.y", DataType.FLOAT64)
        assert FuncCall("abs", y).evaluate(batch()).to_pylist() == [1.5, 2.0, 0.0, 4.0]

    def test_sqrt_type(self):
        assert FuncCall("sqrt", x()).dtype is DataType.FLOAT64

    def test_unknown_function(self):
        with pytest.raises(TypeError_):
            FuncCall("frobnicate", x())

    def test_non_numeric_rejected(self):
        with pytest.raises(TypeError_):
            FuncCall("abs", s())


class TestConjuncts:
    def test_flattens_nested_ands(self):
        a = Comparison(">", x(), Literal.infer(0))
        b = Comparison("<", x(), Literal.infer(5))
        c = Comparison("=", s(), Literal.infer("a"))
        nested = BoolOp("and", [BoolOp("and", [a, b]), c])
        assert conjuncts(nested) == [a, b, c]

    def test_or_not_split(self):
        a = Comparison(">", x(), Literal.infer(0))
        b = Comparison("<", x(), Literal.infer(5))
        either = BoolOp("or", [a, b])
        assert conjuncts(either) == [either]

    def test_conjoin(self):
        a = Comparison(">", x(), Literal.infer(0))
        assert conjoin([]) is None
        assert conjoin([a]) is a
        combined = conjoin([a, a])
        assert isinstance(combined, BoolOp) and combined.op == "and"


@given(
    st.lists(st.integers(-1000, 1000), min_size=1, max_size=50),
    st.integers(-1000, 1000),
)
def test_comparison_matches_python(values, threshold):
    data = ColumnBatch(
        ["t.v"], [Column.from_pylist(DataType.INT64, values)]
    )
    ref = ColumnRef("t.v", DataType.INT64)
    for op, fn in [
        ("<", lambda a, b: a < b),
        ("<=", lambda a, b: a <= b),
        (">", lambda a, b: a > b),
        (">=", lambda a, b: a >= b),
        ("=", lambda a, b: a == b),
        ("<>", lambda a, b: a != b),
    ]:
        got = Comparison(op, ref, Literal.infer(threshold)).evaluate(data)
        assert got.to_pylist() == [fn(v, threshold) for v in values]


@given(
    st.lists(
        st.tuples(st.integers(-100, 100), st.integers(1, 100)),
        min_size=1,
        max_size=30,
    )
)
def test_arithmetic_matches_python(pairs):
    a_vals = [a for a, _ in pairs]
    b_vals = [b for _, b in pairs]
    data = ColumnBatch(
        ["t.a", "t.b"],
        [
            Column.from_pylist(DataType.INT64, a_vals),
            Column.from_pylist(DataType.INT64, b_vals),
        ],
    )
    a = ColumnRef("t.a", DataType.INT64)
    b = ColumnRef("t.b", DataType.INT64)
    assert Arithmetic("+", a, b).evaluate(data).to_pylist() == [
        u + v for u, v in pairs
    ]
    assert Arithmetic("*", a, b).evaluate(data).to_pylist() == [
        u * v for u, v in pairs
    ]
    got = Arithmetic("/", a, b).evaluate(data).to_pylist()
    assert got == pytest.approx([u / v for u, v in pairs])
