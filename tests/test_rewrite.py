"""Tests for compile-time rewrite rules: pushdown, metadata-first
reordering, and column pruning."""

import pytest

from repro.db import ColumnDef, Database, DataType, TableKind, TableSchema
from repro.db.plan.logical import Join, Project, Scan, Select
from repro.db.plan.rewrite import (
    metadata_first_join_order,
    prune_columns,
    push_down_selections,
)


@pytest.fixture()
def db():
    db = Database()
    for name, kind in (("M1", TableKind.METADATA), ("M2", TableKind.METADATA),
                       ("A1", TableKind.ACTUAL)):
        db.create_table(
            TableSchema(
                name,
                [
                    ColumnDef("k", DataType.INT64),
                    ColumnDef("v", DataType.FLOAT64),
                    ColumnDef("s", DataType.STRING),
                ],
                kind=kind,
            )
        )
    return db


def classify(db):
    return db.catalog.is_metadata_table


def scans_in(plan):
    return [n for n in plan.walk() if isinstance(n, Scan)]


class TestSelectionPushdown:
    def test_single_table_conjunct_reaches_scan(self, db):
        plan = db.bind_sql(
            "SELECT M1.v FROM M1 JOIN A1 ON M1.k = A1.k WHERE M1.s = 'x'"
        )
        pushed = push_down_selections(plan)
        join = pushed.child
        assert isinstance(join, Join)
        assert isinstance(join.left, Select)
        assert isinstance(join.left.child, Scan)

    def test_cross_product_plus_predicate_becomes_join(self, db):
        plan = db.bind_sql("SELECT M1.v FROM M1, A1 WHERE M1.k = A1.k")
        pushed = push_down_selections(plan)
        join = pushed.child
        assert isinstance(join, Join)
        assert join.condition is not None

    def test_conjuncts_split_between_sides(self, db):
        plan = db.bind_sql(
            "SELECT M1.v FROM M1 JOIN A1 ON M1.k = A1.k "
            "WHERE M1.s = 'x' AND A1.v > 1.0"
        )
        pushed = push_down_selections(plan)
        join = pushed.child
        assert isinstance(join.left, Select)
        assert isinstance(join.right, Select)

    def test_results_unchanged_by_pushdown(self, db):
        db.insert_rows("M1", [(1, 1.0, "x"), (2, 2.0, "y")])
        db.insert_rows("A1", [(1, 10.0, "p"), (1, 20.0, "q"), (2, 30.0, "r")])
        sql = (
            "SELECT M1.s, A1.v FROM M1 JOIN A1 ON M1.k = A1.k "
            "WHERE M1.s = 'x' AND A1.v > 5.0 ORDER BY A1.v"
        )
        raw = db.bind_sql(sql)
        pushed = push_down_selections(raw)
        assert db.execute_plan(raw).rows() == db.execute_plan(pushed).rows()


class TestMetadataFirstReorder:
    def test_paper_pattern(self, db):
        """a1 ⋈ (m1 ⋈ m2): the metadata join is innermost (right-deep)."""
        sql = (
            "SELECT AVG(A1.v) FROM M1 JOIN A1 ON M1.k = A1.k "
            "JOIN M2 ON M1.k = M2.k"
        )
        plan = push_down_selections(db.bind_sql(sql))
        reordered = metadata_first_join_order(plan, classify(db))
        # Top join's left subtree holds the actual scan, right the metadata.
        top_join = next(n for n in reordered.walk() if isinstance(n, Join))
        left_tables = {s.table_name for s in scans_in(top_join.left)}
        right_tables = {s.table_name for s in scans_in(top_join.right)}
        assert left_tables == {"A1"}
        assert right_tables == {"M1", "M2"}

    def test_join_conditions_preserved_semantically(self, db):
        db.insert_rows("M1", [(1, 1.0, "x"), (2, 2.0, "y")])
        db.insert_rows("M2", [(1, 5.0, "m"), (2, 6.0, "n")])
        db.insert_rows("A1", [(1, 10.0, "a"), (2, 20.0, "b"), (3, 30.0, "c")])
        sql = (
            "SELECT M1.s, M2.s, A1.v FROM M1 JOIN A1 ON M1.k = A1.k "
            "JOIN M2 ON M1.k = M2.k ORDER BY A1.v"
        )
        plan = push_down_selections(db.bind_sql(sql))
        reordered = metadata_first_join_order(plan, classify(db))
        assert (
            db.execute_plan(plan).rows() == db.execute_plan(reordered).rows()
        )

    def test_metadata_only_plan_unchanged_shape(self, db):
        sql = "SELECT M1.v FROM M1 JOIN M2 ON M1.k = M2.k"
        plan = push_down_selections(db.bind_sql(sql))
        reordered = metadata_first_join_order(plan, classify(db))
        assert {s.table_name for s in scans_in(reordered)} == {"M1", "M2"}

    def test_single_table_noop(self, db):
        plan = push_down_selections(db.bind_sql("SELECT v FROM A1"))
        reordered = metadata_first_join_order(plan, classify(db))
        assert isinstance(reordered, Project)

    def test_cartesian_product_allowed_in_metadata_branch(self, db):
        """Qf may contain cartesian products (§3)."""
        db.insert_rows("M1", [(1, 1.0, "x")])
        db.insert_rows("M2", [(2, 2.0, "y")])
        db.insert_rows("A1", [(1, 10.0, "a")])
        sql = (
            "SELECT M1.s FROM M1, M2, A1 WHERE M1.k = A1.k"
        )
        plan = push_down_selections(db.bind_sql(sql))
        reordered = metadata_first_join_order(plan, classify(db))
        assert db.execute_plan(reordered).rows() == [("x",)]


class TestPruneColumns:
    def test_scan_trimmed_to_used_columns(self, db):
        plan = push_down_selections(db.bind_sql("SELECT v FROM M1"))
        pruned = prune_columns(plan)
        scan = scans_in(pruned)[0]
        assert scan.output_keys() == ["m1.v"]

    def test_predicate_columns_kept(self, db):
        plan = push_down_selections(
            db.bind_sql("SELECT v FROM M1 WHERE s = 'x'")
        )
        pruned = prune_columns(plan)
        scan = scans_in(pruned)[0]
        assert set(scan.output_keys()) == {"m1.v", "m1.s"}

    def test_count_star_keeps_one_column(self, db):
        plan = db.bind_sql("SELECT COUNT(*) FROM M1")
        pruned = prune_columns(plan)
        scan = scans_in(pruned)[0]
        assert len(scan.output_keys()) == 1

    def test_join_keys_survive(self, db):
        plan = push_down_selections(
            db.bind_sql("SELECT M1.v FROM M1 JOIN A1 ON M1.k = A1.k")
        )
        pruned = prune_columns(plan)
        for scan in scans_in(pruned):
            assert any(key.endswith(".k") for key in scan.output_keys())

    def test_pruned_results_identical(self, db):
        db.insert_rows("M1", [(1, 1.0, "x"), (2, 2.0, "y")])
        db.insert_rows("A1", [(1, 10.0, "a"), (2, 20.0, "b")])
        sql = (
            "SELECT M1.s, A1.v FROM M1 JOIN A1 ON M1.k = A1.k "
            "WHERE A1.v > 5.0 ORDER BY A1.v"
        )
        plan = push_down_selections(db.bind_sql(sql))
        pruned = prune_columns(plan)
        assert db.execute_plan(plan).rows() == db.execute_plan(pruned).rows()


class TestFullPipeline:
    def test_optimize_produces_paper_q1_shape(self, db):
        """After the full pipeline the plan matches §3's worked example:
        γ(σp3(scan(A)) ⋈ (σp1(scan(M1)) ⋈ σp2(scan(M2))))."""
        sql = (
            "SELECT AVG(A1.v) FROM M1 JOIN M2 ON M1.k = M2.k "
            "JOIN A1 ON M2.k = A1.k "
            "WHERE M1.s = 'x' AND M2.v > 0.5 AND A1.v < 100.0"
        )
        plan = db.optimize(db.bind_sql(sql), metadata_first=True)
        top_join = next(n for n in plan.walk() if isinstance(n, Join))
        # Left side: selection over the actual scan.
        assert isinstance(top_join.left, Select)
        assert isinstance(top_join.left.child, Scan)
        assert top_join.left.child.table_name == "A1"
        # Right side: the metadata branch with its own selections.
        right_tables = {s.table_name for s in scans_in(top_join.right)}
        assert right_tables == {"M1", "M2"}


class TestUnionAllSchemaPreservation:
    """Regression: _push/_prune used to rebuild UnionAll without its
    declared_output, crashing on zero-branch unions (the empty files-of-
    interest case) and losing the pinned schema."""

    def _empty_union(self):
        from repro.db.plan.logical import UnionAll

        declared = [("a1.k", DataType.INT64), ("a1.v", DataType.FLOAT64)]
        return UnionAll([], declared_output=declared), declared

    def test_push_preserves_declared_output_on_empty_union(self):
        union, declared = self._empty_union()
        pushed = push_down_selections(union)
        assert pushed.output == declared

    def test_prune_preserves_declared_output_on_empty_union(self):
        union, declared = self._empty_union()
        pruned = prune_columns(union)
        assert pruned.output == declared

    def test_prune_keeps_union_branches_aligned(self, db):
        from repro.db.expr import ColumnRef
        from repro.db.plan.logical import Project, UnionAll

        scan = Scan(
            "A1", "a1",
            [("a1.k", DataType.INT64), ("a1.v", DataType.FLOAT64)],
        )
        union = UnionAll([scan], declared_output=list(scan.output))
        # Only a1.k is required above the union — branches must still
        # produce the union's full declared schema.
        plan = Project(
            union, [("k", ColumnRef("a1.k", DataType.INT64))]
        )
        pruned = prune_columns(plan)
        pruned_union = next(
            n for n in pruned.walk() if isinstance(n, UnionAll)
        )
        assert pruned_union.output == union.output
        for branch in pruned_union.inputs:
            assert branch.output == pruned_union.output
