"""Tests for the SQL lexer."""

import pytest

from repro.db.errors import SqlSyntaxError
from repro.db.sql.lexer import Token, TokenType, tokenize


def kinds(text):
    return [(t.type, t.value) for t in tokenize(text)[:-1]]  # drop END


class TestBasics:
    def test_keywords_case_insensitive(self):
        assert kinds("SELECT select SeLeCt") == [
            (TokenType.KEYWORD, "select")
        ] * 3

    def test_identifiers_keep_spelling(self):
        assert kinds("Station")[0] == (TokenType.IDENT, "Station")

    def test_end_token_present(self):
        tokens = tokenize("x")
        assert tokens[-1].type is TokenType.END

    def test_empty_input(self):
        assert tokenize("") == [Token(TokenType.END, None, 0)]

    def test_semicolon_ignored(self):
        assert kinds("select;") == [(TokenType.KEYWORD, "select")]


class TestNumbers:
    def test_integer(self):
        assert kinds("42") == [(TokenType.NUMBER, 42)]

    def test_float(self):
        assert kinds("4.25") == [(TokenType.NUMBER, 4.25)]

    def test_scientific(self):
        assert kinds("1e3") == [(TokenType.NUMBER, 1000.0)]
        assert kinds("2.5E-2") == [(TokenType.NUMBER, 0.025)]

    def test_leading_dot(self):
        assert kinds(".5") == [(TokenType.NUMBER, 0.5)]

    def test_number_then_dot_ident(self):
        # "1.5.x" style is not valid, but "D.x" after number should split
        tokens = kinds("1 .")
        assert tokens[0] == (TokenType.NUMBER, 1)


class TestStrings:
    def test_simple(self):
        assert kinds("'ISK'") == [(TokenType.STRING, "ISK")]

    def test_escaped_quote(self):
        assert kinds("'it''s'") == [(TokenType.STRING, "it's")]

    def test_empty_string(self):
        assert kinds("''") == [(TokenType.STRING, "")]

    def test_unterminated_raises(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_timestamp_literal(self):
        assert kinds("'2010-01-12T00:00:00.000'") == [
            (TokenType.STRING, "2010-01-12T00:00:00.000")
        ]


class TestOperators:
    def test_two_char_operators(self):
        assert kinds("<= >= <>") == [
            (TokenType.OPERATOR, "<="),
            (TokenType.OPERATOR, ">="),
            (TokenType.OPERATOR, "<>"),
        ]

    def test_not_equal_alias(self):
        assert kinds("!=") == [(TokenType.OPERATOR, "<>")]

    def test_punctuation(self):
        assert kinds("( ) , . *") == [
            (TokenType.PUNCT, "("),
            (TokenType.PUNCT, ")"),
            (TokenType.PUNCT, ","),
            (TokenType.PUNCT, "."),
            (TokenType.PUNCT, "*"),
        ]

    def test_unknown_character(self):
        with pytest.raises(SqlSyntaxError) as err:
            tokenize("select @")
        assert err.value.position == 7


class TestComments:
    def test_line_comment_skipped(self):
        assert kinds("select -- comment\n 1") == [
            (TokenType.KEYWORD, "select"),
            (TokenType.NUMBER, 1),
        ]

    def test_comment_at_eof(self):
        assert kinds("1 -- trailing") == [(TokenType.NUMBER, 1)]


class TestQuotedIdentifiers:
    def test_quoted_identifier(self):
        assert kinds('"weird name"') == [(TokenType.IDENT, "weird name")]

    def test_unterminated_quoted_identifier(self):
        with pytest.raises(SqlSyntaxError):
            tokenize('"oops')


def test_positions_recorded():
    tokens = tokenize("select x")
    assert tokens[0].position == 0
    assert tokens[1].position == 7


def test_is_keyword_helper():
    token = tokenize("select")[0]
    assert token.is_keyword("select")
    assert token.is_keyword("select", "from")
    assert not token.is_keyword("from")
