"""Tests for the buffer manager and disk model."""

import pytest

from repro.db.buffer import (
    BufferManager,
    DiskModel,
    index_object_name,
    table_object_name,
)


class TestDiskModel:
    def test_read_seconds_formula(self):
        disk = DiskModel(seek_seconds=0.01, bandwidth_bytes_per_s=1e6)
        assert disk.read_seconds(0) == pytest.approx(0.01)
        assert disk.read_seconds(1_000_000) == pytest.approx(1.01)

    def test_defaults_resemble_hdd(self):
        disk = DiskModel()
        # ~8ms seek, >50 MB/s: a 2011-era 7200rpm disk.
        assert 0.001 < disk.seek_seconds < 0.05
        assert disk.bandwidth_bytes_per_s > 5e7


class TestBufferManager:
    def test_first_touch_charges(self):
        buffers = BufferManager(DiskModel(seek_seconds=0.5))
        charged = buffers.touch("table:t:c", 100)
        assert charged > 0.5
        assert buffers.stats.objects_read == 1
        assert buffers.stats.bytes_read == 100

    def test_second_touch_free(self):
        buffers = BufferManager()
        buffers.touch("x", 10)
        assert buffers.touch("x", 10) == 0.0
        assert buffers.stats.objects_read == 1

    def test_flush_evicts(self):
        buffers = BufferManager()
        buffers.touch("x", 10)
        buffers.flush()
        assert not buffers.is_resident("x")
        assert buffers.touch("x", 10) > 0.0

    def test_warm_marks_resident_without_charge(self):
        buffers = BufferManager()
        buffers.warm("x", 10)
        assert buffers.is_resident("x")
        assert buffers.touch("x", 10) == 0.0
        assert buffers.stats.objects_read == 0

    def test_touched_set_records_all_accesses(self):
        buffers = BufferManager()
        buffers.warm("x", 10)
        buffers.touch("x", 10)
        buffers.touch("y", 10)
        assert buffers.stats.touched == {"x", "y"}

    def test_reset_stats_keeps_residency(self):
        buffers = BufferManager()
        buffers.touch("x", 10)
        buffers.reset_stats()
        assert buffers.stats.objects_read == 0
        assert buffers.is_resident("x")

    def test_stats_copy_is_independent(self):
        buffers = BufferManager()
        buffers.touch("x", 10)
        snapshot = buffers.stats.copy()
        buffers.touch("y", 10)
        assert snapshot.objects_read == 1
        assert buffers.stats.objects_read == 2
        assert "y" not in snapshot.touched

    def test_resident_objects_snapshot(self):
        buffers = BufferManager()
        buffers.touch("a", 1)
        resident = buffers.resident_objects()
        resident.add("b")
        assert not buffers.is_resident("b")


class TestObjectNames:
    def test_table_object_name(self):
        assert table_object_name("F", "URI") == "table:f:uri"

    def test_index_object_name(self):
        assert index_object_name("D", ("uri", "RECORD_ID")) == \
            "index:d:uri,record_id"
