"""Tests for the ingestion cache: policies, granularities, eviction."""

import threading

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core import CacheGranularity, CachePolicy, IngestionCache, WHOLE_FILE
from repro.core.cache import covers
from repro.db import Column, ColumnBatch, DataType


def batch(n=10):
    return ColumnBatch(
        ["sample_time", "sample_value"],
        [
            Column.from_pylist(DataType.TIMESTAMP, list(range(n))),
            Column.from_pylist(DataType.FLOAT64, [float(i) for i in range(n)]),
        ],
    )


class TestDiscardPolicy:
    def test_store_is_noop(self):
        cache = IngestionCache(CachePolicy.DISCARD)
        cache.store("f1", batch())
        assert not cache.contains("f1")
        assert cache.lookup("f1") is None
        assert len(cache) == 0


class TestUnboundedFileGranular:
    def test_store_and_lookup(self):
        cache = IngestionCache(CachePolicy.UNBOUNDED)
        cache.store("f1", batch())
        assert cache.contains("f1")
        assert cache.lookup("f1").num_rows == 10
        assert cache.stats.hits == 1

    def test_any_interval_served_by_file_entry(self):
        cache = IngestionCache(CachePolicy.UNBOUNDED)
        cache.store("f1", batch())
        assert cache.contains("f1", (3, 5))
        assert cache.lookup("f1", (3, 5)).num_rows == 10

    def test_miss_counted(self):
        cache = IngestionCache(CachePolicy.UNBOUNDED)
        assert cache.lookup("nope") is None
        assert cache.stats.misses == 1

    def test_duplicate_store_ignored(self):
        cache = IngestionCache(CachePolicy.UNBOUNDED)
        cache.store("f1", batch())
        cache.store("f1", batch())
        assert cache.stats.insertions == 1

    def test_cached_uris(self):
        cache = IngestionCache(CachePolicy.UNBOUNDED)
        cache.store("a", batch())
        cache.store("b", batch())
        assert cache.cached_uris() == {"a", "b"}

    def test_invalidate(self):
        cache = IngestionCache(CachePolicy.UNBOUNDED)
        cache.store("a", batch())
        cache.invalidate("a")
        assert not cache.contains("a")
        assert cache.stats.current_bytes == 0

    def test_invalidate_counts(self):
        cache = IngestionCache(CachePolicy.UNBOUNDED)
        cache.store("a", batch())
        cache.store("b", batch())
        assert cache.invalidate("a") == 1
        assert cache.stats.invalidations == 1
        assert cache.invalidate("a") == 0  # already gone: nothing counted
        assert cache.stats.invalidations == 1
        assert cache.stats.current_bytes == batch().nbytes()

    def test_clear(self):
        cache = IngestionCache(CachePolicy.UNBOUNDED)
        cache.store("a", batch())
        cache.clear()
        assert len(cache) == 0

    def test_clear_counts_invalidations(self):
        cache = IngestionCache(CachePolicy.UNBOUNDED)
        cache.store("a", batch())
        cache.store("b", batch())
        cache.clear()
        assert cache.stats.invalidations == 2
        cache.clear()  # empty clear counts nothing
        assert cache.stats.invalidations == 2


class TestStaleness:
    """Entries record the file's (mtime_ns, size) signature at store time;
    a lookup presenting a different signature invalidates and misses."""

    def test_matching_signature_hits(self):
        cache = IngestionCache(CachePolicy.UNBOUNDED)
        cache.store("a", batch(), signature=(100, 64))
        assert cache.lookup("a", signature=(100, 64)) is not None
        assert cache.stats.hits == 1
        assert cache.stats.invalidations == 0

    def test_changed_signature_invalidates_and_misses(self):
        cache = IngestionCache(CachePolicy.UNBOUNDED)
        cache.store("a", batch(), signature=(100, 64))
        assert cache.lookup("a", signature=(200, 64)) is None
        assert cache.stats.misses == 1
        assert cache.stats.invalidations == 1
        assert not cache.contains("a")
        assert cache.stats.current_bytes == 0

    def test_no_signature_lookup_skips_validation(self):
        """A caller that opts out (validate_staleness=False) still hits."""
        cache = IngestionCache(CachePolicy.UNBOUNDED)
        cache.store("a", batch(), signature=(100, 64))
        assert cache.lookup("a") is not None

    def test_unsigned_entry_never_invalidated(self):
        """Entries stored without a signature (legacy stores) always serve."""
        cache = IngestionCache(CachePolicy.UNBOUNDED)
        cache.store("a", batch())
        assert cache.lookup("a", signature=(1, 2)) is not None

    def test_tuple_granular_invalidates_all_intervals(self):
        cache = IngestionCache(CachePolicy.UNBOUNDED, CacheGranularity.TUPLE)
        cache.store("a", batch(3), (0, 10), signature=(100, 64))
        cache.store("a", batch(3), (90, 100), signature=(100, 64))
        assert cache.lookup("a", (1, 9), signature=(999, 64)) is None
        assert cache.stats.invalidations == 2
        assert not cache.contains("a", (91, 99))
        assert cache.stats.current_bytes == 0


class TestTupleGranular:
    def make(self):
        return IngestionCache(
            CachePolicy.UNBOUNDED, CacheGranularity.TUPLE
        )

    def test_superset_interval_serves(self):
        cache = self.make()
        cache.store("f1", batch(), (0, 100))
        assert cache.contains("f1", (10, 20))
        assert cache.lookup("f1", (10, 20)) is not None

    def test_partial_overlap_misses(self):
        """§3: the whole file must be mounted when any required tuple is
        missing from the cache."""
        cache = self.make()
        cache.store("f1", batch(), (0, 50))
        assert not cache.contains("f1", (40, 60))
        assert cache.lookup("f1", (40, 60)) is None

    def test_whole_file_request_needs_whole_file_entry(self):
        cache = self.make()
        cache.store("f1", batch(), (0, 50))
        assert not cache.contains("f1", WHOLE_FILE)
        cache.store("f1", batch(), WHOLE_FILE)
        assert cache.contains("f1", WHOLE_FILE)

    def test_multiple_intervals_per_file(self):
        cache = self.make()
        cache.store("f1", batch(3), (0, 10))
        cache.store("f1", batch(3), (90, 100))
        assert cache.contains("f1", (1, 9))
        assert cache.contains("f1", (91, 99))
        assert not cache.contains("f1", (50, 60))

    def test_cached_uris_tuple_keys(self):
        cache = self.make()
        cache.store("f1", batch(), (0, 10))
        assert cache.cached_uris() == {"f1"}


class TestLru:
    def test_requires_capacity(self):
        with pytest.raises(ValueError):
            IngestionCache(CachePolicy.LRU)

    def test_eviction_under_pressure(self):
        one_batch_bytes = batch().nbytes()
        cache = IngestionCache(
            CachePolicy.LRU, capacity_bytes=int(one_batch_bytes * 2.5)
        )
        cache.store("a", batch())
        cache.store("b", batch())
        cache.store("c", batch())
        assert cache.stats.evictions >= 1
        assert cache.stats.current_bytes <= int(one_batch_bytes * 2.5)
        assert not cache.contains("a")  # least recently used went first

    def test_lookup_refreshes_recency(self):
        one = batch().nbytes()
        cache = IngestionCache(CachePolicy.LRU, capacity_bytes=int(one * 2.5))
        cache.store("a", batch())
        cache.store("b", batch())
        cache.lookup("a")  # a becomes most recent
        cache.store("c", batch())
        assert cache.contains("a")
        assert not cache.contains("b")

    def test_oversized_entry_rejected_at_admission(self):
        """An entry larger than the whole capacity can never fit: admitting
        it would either blow the budget forever (the old ``len > 1`` evict
        guard kept it) or evict everything else for nothing. It is rejected
        outright and counted."""
        cache = IngestionCache(CachePolicy.LRU, capacity_bytes=1)
        cache.store("a", batch())
        assert not cache.contains("a")
        assert cache.stats.rejected == 1
        assert cache.stats.current_bytes == 0


class TestIntervalCoverage:
    """FILE-granularity entries now carry a coverage interval (selective
    mounts store partial batches); requests are served only by covering
    entries, and re-storing wider coverage replaces narrower entries."""

    def test_partial_entry_serves_only_covered_requests(self):
        cache = IngestionCache(CachePolicy.UNBOUNDED)
        cache.store("f1", batch(), interval=(100, 500))
        assert cache.contains("f1", (200, 400))
        assert cache.contains("f1", (100, 500))
        assert not cache.contains("f1", (50, 400))
        assert not cache.contains("f1")  # whole-file request
        assert cache.lookup("f1", (50, 400)) is None
        assert cache.stats.misses == 1

    def test_widen_on_remount_replaces_narrower_entry(self):
        cache = IngestionCache(CachePolicy.UNBOUNDED)
        cache.store("f1", batch(4), interval=(100, 500))
        cache.store("f1", batch(10), interval=WHOLE_FILE)
        assert len(cache) == 1
        assert cache.lookup("f1").num_rows == 10
        assert cache.contains("f1", (50, 400))

    def test_narrower_restore_is_noop(self):
        cache = IngestionCache(CachePolicy.UNBOUNDED)
        cache.store("f1", batch(10), interval=WHOLE_FILE)
        cache.store("f1", batch(4), interval=(100, 500))
        assert len(cache) == 1
        assert cache.lookup("f1").num_rows == 10  # wide entry kept

    def test_disjoint_coverage_keeps_latest(self):
        """FILE granularity holds one entry per URI: a non-covering,
        non-subsumed re-store still replaces (coverage may shrink, but
        accounting stays exact)."""
        cache = IngestionCache(CachePolicy.UNBOUNDED)
        cache.store("f1", batch(4), interval=(100, 500))
        cache.store("f1", batch(5), interval=(600, 900))
        assert len(cache) == 1
        assert cache.contains("f1", (600, 900))
        # The displaced disjoint entry must leave the byte accounting too.
        assert cache.stats.current_bytes == batch(5).nbytes()


class TestExactByteAccounting:
    def test_store_widen_evict_invalidate_balance(self):
        """current_bytes equals the sum of retained entries after every
        mutation — stores, widen-replacements, evictions, invalidations."""
        small, big = batch(4), batch(10)
        capacity = small.nbytes() + big.nbytes()
        cache = IngestionCache(CachePolicy.LRU, capacity_bytes=capacity)

        cache.store("a", batch(4), interval=(100, 500))
        assert cache.stats.current_bytes == small.nbytes()

        cache.store("a", batch(10))  # widen: replaces, accounting swaps
        assert cache.stats.current_bytes == big.nbytes()
        assert len(cache) == 1

        cache.store("b", batch(4))
        assert cache.stats.current_bytes == big.nbytes() + small.nbytes()

        cache.store("c", batch(10))  # evicts "a" (LRU) to fit
        assert cache.stats.evictions >= 1
        assert cache.stats.current_bytes <= capacity

        dropped = cache.invalidate("c")
        assert dropped == 1
        assert cache.stats.current_bytes == small.nbytes()

        cache.clear()
        assert cache.stats.current_bytes == 0
        assert len(cache) == 0

    def test_rejected_store_leaves_accounting_untouched(self):
        one = batch(4).nbytes()
        cache = IngestionCache(CachePolicy.LRU, capacity_bytes=one)
        cache.store("a", batch(4))
        before = cache.stats.current_bytes
        cache.store("huge", batch(100))
        assert cache.stats.rejected == 1
        assert cache.stats.current_bytes == before
        assert cache.contains("a")  # nothing was evicted for the reject


class TestConcurrency:
    """Regression: mount-pool workers store into one shared cache while the
    consumer looks up and invalidates. Before the cache grew its lock, the
    LRU OrderedDict could corrupt mid-eviction (RuntimeError/KeyError) and
    current_bytes could drift from the entries actually held."""

    def test_threaded_store_lookup_invalidate_hammer(self):
        one = batch().nbytes()
        cache = IngestionCache(CachePolicy.LRU, capacity_bytes=int(one * 3.5))
        uris = [f"f{i}" for i in range(8)]
        errors = []
        barrier = threading.Barrier(4)

        def hammer(worker):
            try:
                barrier.wait(timeout=10)
                for i in range(300):
                    uri = uris[(worker + i) % len(uris)]
                    cache.store(uri, batch())
                    got = cache.lookup(uri)
                    assert got is None or got.num_rows == 10
                    cache.contains(uris[i % len(uris)])
                    if i % 17 == 0:
                        cache.invalidate(uri)
                    if i % 61 == 0:
                        cache.cached_uris()
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors, errors
        # Post-hammer invariants: byte accounting matches the survivors.
        assert cache.stats.current_bytes == len(cache) * one
        assert cache.stats.current_bytes <= int(one * 3.5)
        cache.clear()
        assert cache.stats.current_bytes == 0


class TestCovers:
    def test_basic(self):
        assert covers((0, 10), (2, 5))
        assert covers((0, 10), (0, 10))
        assert not covers((0, 10), (5, 11))
        assert not covers((5, 10), (4, 6))

    @given(
        st.tuples(st.integers(-100, 100), st.integers(-100, 100)),
        st.tuples(st.integers(-100, 100), st.integers(-100, 100)),
    )
    def test_covers_matches_set_containment(self, entry, request):
        e = (min(entry), max(entry))
        r = (min(request), max(request))
        expected = set(range(r[0], r[1] + 1)) <= set(range(e[0], e[1] + 1))
        assert covers(e, r) == expected


class TestPerUriIndex:
    """The TUPLE-granular key lookup walks only the URI's own entries via
    the secondary index — a miss on one file must not scan every other
    file's entries, and the index must track evictions/invalidations."""

    def test_index_tracks_store_and_invalidate(self):
        cache = IngestionCache(CachePolicy.UNBOUNDED, CacheGranularity.TUPLE)
        cache.store("f1", batch(3), (0, 10))
        cache.store("f1", batch(3), (90, 100))
        cache.store("f2", batch(3), (0, 10))
        assert cache.cached_uris() == {"f1", "f2"}
        cache.invalidate("f1")
        assert cache.cached_uris() == {"f2"}
        assert not cache.contains("f1", (1, 9))
        assert cache.contains("f2", (1, 9))

    def test_index_tracks_eviction(self):
        one = batch().nbytes()
        cache = IngestionCache(
            CachePolicy.LRU,
            CacheGranularity.TUPLE,
            capacity_bytes=int(one * 2.5),
        )
        cache.store("a", batch(), (0, 10))
        cache.store("b", batch(), (0, 10))
        cache.store("c", batch(), (0, 10))
        assert cache.stats.evictions >= 1
        assert "a" not in cache.cached_uris()
        assert not cache.contains("a", (1, 9))

    def test_subsumed_entries_dropped_from_index(self):
        cache = IngestionCache(CachePolicy.UNBOUNDED, CacheGranularity.TUPLE)
        cache.store("f1", batch(3), (0, 10))
        cache.store("f1", batch(3), (20, 30))
        cache.store("f1", batch(9), (0, 50))  # subsumes both
        assert len(cache) == 1
        assert cache.contains("f1", (5, 25))
        cache.invalidate("f1")
        assert len(cache) == 0
        assert cache.cached_uris() == set()

    def test_lookup_cost_is_per_uri_not_global(self):
        """With N URIs each holding one entry, a tuple-granular miss on one
        URI consults only that URI's entries. Covered behaviorally: a miss
        on a URI with no entries is answered without touching others (the
        index has no bucket at all)."""
        cache = IngestionCache(CachePolicy.UNBOUNDED, CacheGranularity.TUPLE)
        for i in range(50):
            cache.store(f"f{i}", batch(2), (0, 10))
        assert not cache.contains("absent", (0, 10))
        assert cache.lookup("absent", (0, 10)) is None
        assert cache.stats.misses == 1


class TestAdaptivePolicy:
    def test_requires_capacity(self):
        with pytest.raises(ValueError):
            IngestionCache(CachePolicy.ADAPTIVE)

    def test_default_advisor_attached(self):
        cache = IngestionCache(CachePolicy.ADAPTIVE, capacity_bytes=10_000)
        assert cache.advisor is not None

    def test_non_adaptive_policies_never_promote(self):
        one = batch().nbytes()
        cache = IngestionCache(
            CachePolicy.LRU,
            CacheGranularity.TUPLE,
            capacity_bytes=int(one * 10),
        )
        for _ in range(5):
            cache.store("hot", batch(), (0, 10))
            cache.lookup("hot", (0, 10))
        assert not cache.wants_whole_file("hot")
        assert cache.granularity_for("hot") is CacheGranularity.TUPLE

    def test_oversized_entry_rejected_like_lru(self):
        cache = IngestionCache(CachePolicy.ADAPTIVE, capacity_bytes=1)
        cache.store("a", batch())
        assert not cache.contains("a")
        assert cache.stats.rejected == 1

    def test_adaptive_hammer_preserves_accounting(self):
        """The LRU-2 victim walk must stay consistent under concurrent
        store/lookup/invalidate — same invariants as the LRU hammer."""
        one = batch().nbytes()
        cache = IngestionCache(
            CachePolicy.ADAPTIVE, capacity_bytes=int(one * 3.5)
        )
        uris = [f"f{i}" for i in range(8)]
        errors = []
        barrier = threading.Barrier(4)

        def hammer(worker):
            try:
                barrier.wait(timeout=10)
                for i in range(300):
                    uri = uris[(worker + i) % len(uris)]
                    cache.store(uri, batch())
                    got = cache.lookup(uri)
                    assert got is None or got.num_rows == 10
                    if i % 17 == 0:
                        cache.invalidate(uri)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors, errors
        assert cache.stats.current_bytes == len(cache) * one
        assert cache.stats.current_bytes <= int(one * 3.5)


class TestCacheStatsHelpers:
    def test_hit_rate_zero_when_untouched(self):
        cache = IngestionCache(CachePolicy.UNBOUNDED)
        assert cache.stats.hit_rate() == 0.0

    def test_hit_rate_counts_lookups_only(self):
        cache = IngestionCache(CachePolicy.UNBOUNDED)
        cache.store("f1", batch())
        cache.lookup("f1")
        cache.lookup("f1")
        cache.lookup("absent")
        assert cache.stats.hit_rate() == pytest.approx(2 / 3)

    def test_as_dict_includes_derived_rate(self):
        cache = IngestionCache(CachePolicy.UNBOUNDED)
        cache.store("f1", batch())
        cache.lookup("f1")
        snapshot = cache.stats.as_dict()
        assert snapshot["hits"] == 1
        assert snapshot["misses"] == 0
        assert snapshot["hit_rate"] == 1.0
