"""Corrupt-corpus fuzzing for the resilient mount path.

Systematically damages repository files — truncation around every record
boundary, bit flips in headers vs payloads, bad magic, oversized
payload_len — and checks both degradation policies:

* ``fail`` (fail-fast): the query raises a typed
  :class:`~repro.db.errors.FileIngestError` subclass naming the offending
  URI;
* ``skip`` (skip-and-report): the query completes with exactly the answer
  the intact files give, byte-identical across ``mount_workers`` 1 and 4,
  and the :class:`~repro.core.MountFailureReport` lists every damaged file.
"""

from __future__ import annotations

import pytest

from repro.core import TwoStageExecutor
from repro.db import Database
from repro.db.errors import (
    CorruptFileError,
    FileIngestError,
    IngestError,
    TruncatedFileError,
)
from repro.ingest import RepositoryBinding, lazy_ingest_metadata
from repro.mseed import (
    HEADER_SIZE,
    FileRepository,
    RecordHeader,
    RepositorySpec,
    generate_repository,
    read_file_metadata,
)

SPEC = RepositorySpec(
    stations=("ISK", "ANK"),
    channels=("BHE",),
    days=2,
    sample_rate=0.05,
    samples_per_record=400,
)

SQL = (
    "SELECT COUNT(*), SUM(D.sample_value) "
    "FROM F JOIN D ON F.uri = D.uri"
)


@pytest.fixture()
def repo(tmp_path):
    generate_repository(tmp_path, SPEC)
    return FileRepository(tmp_path)


def make_executor(repo, workers=1, on_error="fail"):
    db = Database()
    lazy_ingest_metadata(db, repo)
    return TwoStageExecutor(
        db,
        RepositoryBinding(repo),
        mount_workers=workers,
        on_mount_error=on_error,
    )


def record_offsets(raw: bytes) -> list[int]:
    """Byte offset of every record in a pristine volume."""
    offsets, pos = [], 0
    while pos < len(raw):
        header = RecordHeader.unpack(raw[pos: pos + HEADER_SIZE])
        offsets.append(pos)
        pos += HEADER_SIZE + header.payload_len
    return offsets


def expected_over(repo, intact_uris):
    """COUNT(*) the query should yield over just the intact files (the
    corrupted ones can no longer be statted through read_file_metadata)."""
    return sum(
        read_file_metadata(repo.path_of(uri))[0].nsamples
        for uri in intact_uris
    )


class TestTruncationFuzzing:
    def test_truncation_inside_every_record_fails_fast_with_uri(self, repo):
        """Cut the file mid-header and mid-payload of each record: every
        cut must surface as TruncatedFileError naming the file."""
        victim = repo.uris()[0]
        path = repo.path_of(victim)
        pristine = path.read_bytes()
        cut_points = []
        for offset in record_offsets(pristine):
            cut_points.append(offset + 10)  # mid-header
            cut_points.append(offset + HEADER_SIZE + 3)  # mid-payload
        assert len(cut_points) >= 6  # the spec yields multi-record files
        for cut in cut_points:
            # Ingest metadata while the file is healthy; the damage lands
            # between stage 1 and stage 2, where mounting must catch it.
            executor = make_executor(repo)
            path.write_bytes(pristine[:cut])
            with pytest.raises(TruncatedFileError) as excinfo:
                executor.execute(SQL)
            assert excinfo.value.mount_uri == victim
            assert victim in str(excinfo.value)
            path.write_bytes(pristine)

    @pytest.mark.parametrize("workers", [1, 4])
    def test_truncation_skip_and_report(self, repo, workers):
        victim = repo.uris()[0]
        path = repo.path_of(victim)
        pristine = path.read_bytes()
        executor = make_executor(repo, workers, "skip")
        boundary = record_offsets(pristine)[2]
        path.write_bytes(pristine[: boundary + HEADER_SIZE + 3])

        intact = [u for u in repo.uris() if u != victim]
        outcome = executor.execute(SQL)
        count, total = outcome.rows[0]
        assert count == expected_over(repo, intact)
        report = outcome.timings.mount_failures
        assert report.uris() == [victim]
        assert report.failures[0].error == "TruncatedFileError"
        assert report.failures[0].offset is not None


class TestBitFlips:
    def flip(self, path, offset):
        raw = bytearray(path.read_bytes())
        raw[offset] ^= 0xFF
        path.write_bytes(bytes(raw))

    def test_header_flip_fails_fast_typed(self, repo):
        """Flip the magic of the second record: CorruptFileError, with the
        record's byte offset."""
        victim = repo.uris()[1]
        path = repo.path_of(victim)
        executor = make_executor(repo)
        second = record_offsets(path.read_bytes())[1]
        self.flip(path, second)
        with pytest.raises(CorruptFileError) as excinfo:
            executor.execute(SQL)
        assert excinfo.value.mount_uri == victim
        assert excinfo.value.offset == second

    def test_payload_flip_fails_fast_typed(self, repo):
        victim = repo.uris()[1]
        path = repo.path_of(victim)
        executor = make_executor(repo)
        self.flip(path, HEADER_SIZE + 36)
        with pytest.raises(IngestError) as excinfo:
            executor.execute(SQL)
        assert isinstance(excinfo.value, FileIngestError)
        assert excinfo.value.mount_uri == victim

    @pytest.mark.parametrize("workers", [1, 4])
    @pytest.mark.parametrize("region", ["header", "payload"])
    def test_bit_flip_skip_and_report(self, repo, workers, region):
        victim = repo.uris()[1]
        path = repo.path_of(victim)
        executor = make_executor(repo, workers, "skip")
        offset = (
            record_offsets(path.read_bytes())[1]
            if region == "header"
            else HEADER_SIZE + 36
        )
        self.flip(path, offset)
        intact = [u for u in repo.uris() if u != victim]
        outcome = executor.execute(SQL)
        assert outcome.rows[0][0] == expected_over(repo, intact)
        assert outcome.timings.mount_failures.uris() == [victim]


class TestStructuralDamage:
    def oversize_payload_len(self, path):
        """Claim a payload far past end-of-file in the first header."""
        raw = path.read_bytes()
        header = RecordHeader.unpack(raw[:HEADER_SIZE])
        bad = RecordHeader(
            **{**header.__dict__, "payload_len": 1_000_000}
        )
        path.write_bytes(bad.pack() + raw[HEADER_SIZE:])

    def test_oversized_payload_len_fails_fast(self, repo):
        victim = repo.uris()[0]
        executor = make_executor(repo)
        self.oversize_payload_len(repo.path_of(victim))
        with pytest.raises(TruncatedFileError) as excinfo:
            executor.execute(SQL)
        assert excinfo.value.mount_uri == victim

    @pytest.mark.parametrize("workers", [1, 4])
    def test_mixed_corruption_skip_reports_every_victim(self, repo, workers):
        """k corrupt files of N: the answer is exact over the N-k intact
        files and the report lists all k, whatever the worker count."""
        uris = repo.uris()
        truncated, oversized = uris[0], uris[2]
        executor = make_executor(repo, workers, "skip")
        path = repo.path_of(truncated)
        path.write_bytes(path.read_bytes()[:-16])
        self.oversize_payload_len(repo.path_of(oversized))

        intact = [u for u in uris if u not in (truncated, oversized)]
        outcome = executor.execute(SQL)
        count, total = outcome.rows[0]
        assert count == expected_over(repo, intact)
        report = outcome.timings.mount_failures
        assert sorted(report.uris()) == sorted([truncated, oversized])
        assert all(f.error == "TruncatedFileError" for f in report.failures)


# A window inside the first record only: with SPEC above each record spans
# ~2.2 hours, so this selects record 0 and skips every later record of every
# file of interest.
NARROW_SQL = (
    "SELECT COUNT(*), SUM(D.sample_value) "
    "FROM F JOIN D ON F.uri = D.uri "
    "WHERE D.sample_time >= '2010-01-10T00:10:00.000' "
    "AND D.sample_time < '2010-01-10T01:10:00.000'"
)


class TestSelectiveMountingUnderDamage:
    """Selective mounting must not *weaken* corruption detection for the
    records a query touches — and damage inside records it skips must not
    fail a query that never reads them."""

    def test_damage_in_skipped_record_does_not_fail_narrow_query(self, repo):
        victim = repo.uris()[0]
        path = repo.path_of(victim)
        executor = make_executor(repo)
        expected = executor.execute(NARROW_SQL).rows

        # Flip a payload byte deep in the file — inside a record the narrow
        # window skips. Selective extraction never reads those bytes.
        raw = bytearray(path.read_bytes())
        last_offset = record_offsets(bytes(raw))[-1]
        raw[last_offset + HEADER_SIZE + 5] ^= 0xFF
        path.write_bytes(bytes(raw))

        damaged = make_executor(repo)
        result = damaged.execute(NARROW_SQL)
        assert result.rows == expected
        assert damaged.mounts.stats.records_skipped > 0

    def test_truncated_tail_record_does_not_fail_narrow_query(self, repo):
        """Truncation confined to the (skipped) last record: the byte map
        seeks only to overlapping records, so the query still answers."""
        victim = repo.uris()[0]
        path = repo.path_of(victim)
        executor = make_executor(repo)
        expected = executor.execute(NARROW_SQL).rows

        # Metadata was ingested while the file was healthy; the truncation
        # lands after stage 1, confined to a record the window never reads.
        pristine = path.read_bytes()
        last_offset = record_offsets(pristine)[-1]
        path.write_bytes(pristine[: last_offset + HEADER_SIZE + 3])

        assert executor.execute(NARROW_SQL).rows == expected

    def test_damage_in_touched_record_still_detected(self, repo):
        """Selectivity must not skip validation of what it does read."""
        victim = repo.uris()[0]
        path = repo.path_of(victim)
        raw = bytearray(path.read_bytes())
        raw[HEADER_SIZE + 8] ^= 0xFF  # first record's payload: it IS read
        path.write_bytes(bytes(raw))

        executor = make_executor(repo)
        with pytest.raises(FileIngestError) as excinfo:
            executor.execute(NARROW_SQL)
        assert excinfo.value.mount_uri == victim

    @pytest.mark.parametrize("workers", [1, 4])
    def test_skip_mode_answers_from_intact_records(self, repo, workers):
        """skip-and-report with selective mounting: a file damaged in its
        touched record is quarantined, the rest still answer."""
        victim = repo.uris()[0]
        path = repo.path_of(victim)
        raw = bytearray(path.read_bytes())
        raw[HEADER_SIZE + 8] ^= 0xFF
        path.write_bytes(bytes(raw))

        executor = make_executor(repo, workers, "skip")
        result = executor.execute(NARROW_SQL)
        assert result.timings.mount_failures.uris() == [victim]
        assert result.rows[0][0] > 0  # intact files still contributed


class TestWorkerEquivalence:
    def test_skip_results_identical_across_worker_counts(self, repo):
        """The degraded answer must be byte-identical for serial and
        parallel mounting — skipped branches do not perturb plan order."""
        victim = repo.uris()[1]
        path = repo.path_of(victim)
        serial_executor = make_executor(repo, 1, "skip")
        parallel_executor = make_executor(repo, 4, "skip")
        raw = bytearray(path.read_bytes())
        raw[HEADER_SIZE + 36] ^= 0xFF
        path.write_bytes(bytes(raw))

        serial = serial_executor.execute(SQL)
        parallel = parallel_executor.execute(SQL)
        assert serial.rows == parallel.rows
        assert (
            serial.timings.mount_failures.uris()
            == parallel.timings.mount_failures.uris()
        )
