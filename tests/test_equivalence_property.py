"""The reproduction's central invariant, as a property-based test.

For *any* query in the supported surface, two-stage execution with automated
lazy ingestion must return exactly the same answer as a conventional
database that eagerly loaded the whole repository — under every cache policy
and execution strategy. Hypothesis generates queries from a constrained
grammar over the seismic schema.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import (
    CacheGranularity,
    CachePolicy,
    IngestionCache,
    PER_FILE,
    TwoStageExecutor,
)
from repro.ingest import RepositoryBinding

STATIONS = ["ISK", "ANK", "NOSUCH"]
CHANNELS = ["BHE", "BHZ"]
# Time anchors inside (and slightly outside) the tiny repository's 2 days.
TIMES = [
    "2010-01-09T00:00:00",
    "2010-01-10T06:00:00",
    "2010-01-10T18:00:00",
    "2010-01-11T03:00:00",
    "2010-01-11T21:00:00",
    "2010-01-13T00:00:00",
]

aggregates = st.sampled_from([
    "AVG(D.sample_value)",
    "SUM(D.sample_value)",
    "COUNT(*)",
    "MIN(D.sample_value)",
    "MAX(D.sample_value)",
])


@st.composite
def seismic_queries(draw):
    """A random query over F ⋈ (R ⋈)? D with optional predicates."""
    use_r = draw(st.booleans())
    predicates = []
    station = draw(st.sampled_from(STATIONS + [None]))
    if station:
        predicates.append(f"F.station = '{station}'")
    channel = draw(st.sampled_from(CHANNELS + [None]))
    if channel:
        predicates.append(f"F.channel = '{channel}'")
    t0, t1 = sorted(draw(st.tuples(st.sampled_from(TIMES), st.sampled_from(TIMES))))
    if draw(st.booleans()):
        predicates.append(f"D.sample_time > '{t0}'")
        predicates.append(f"D.sample_time < '{t1}'")
    if draw(st.booleans()):
        predicates.append(
            f"D.sample_value > {draw(st.sampled_from([-1000.0, 0.0, 500.0]))}"
        )
    if use_r and draw(st.booleans()):
        predicates.append(f"R.record_id = {draw(st.integers(0, 5))}")

    joins = "F JOIN D ON F.uri = D.uri"
    if use_r:
        joins = (
            "F JOIN R ON F.uri = R.uri "
            "JOIN D ON R.uri = D.uri AND R.record_id = D.record_id"
        )

    grouped = draw(st.booleans())
    if grouped:
        agg = draw(aggregates)
        select = f"F.channel, {agg} AS a"
        tail = " GROUP BY F.channel ORDER BY F.channel"
    elif draw(st.booleans()):
        select = draw(aggregates)
        tail = ""
    else:
        select = "D.sample_time, D.sample_value"
        limit = draw(st.integers(1, 50))
        tail = f" ORDER BY D.sample_value DESC, D.sample_time LIMIT {limit}"

    where = f" WHERE {' AND '.join(predicates)}" if predicates else ""
    return f"SELECT {select} FROM {joins}{where}{tail}"


def normalize(rows):
    out = []
    for row in rows:
        canon = []
        for value in row:
            if isinstance(value, float):
                canon.append("nan" if math.isnan(value) else round(value, 6))
            else:
                canon.append(value)
        out.append(tuple(canon))
    return sorted(out)


@settings(
    deadline=None,
    max_examples=40,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(sql=seismic_queries(), data=st.data())
def test_two_stage_equals_eager(sql, data, ei_db, ali_db, tiny_repo):
    cache = data.draw(
        st.sampled_from([
            IngestionCache(CachePolicy.DISCARD),
            IngestionCache(CachePolicy.UNBOUNDED),
            IngestionCache(CachePolicy.UNBOUNDED, CacheGranularity.TUPLE),
        ])
    )
    strategy = data.draw(st.sampled_from(["bulk", PER_FILE]))
    mount_workers = data.draw(st.sampled_from([1, 4]))
    executor = TwoStageExecutor(
        ali_db,
        RepositoryBinding(tiny_repo),
        cache=cache,
        strategy=strategy,
        mount_workers=mount_workers,
    )
    expected = ei_db.execute(sql).rows()
    got = executor.execute(sql).rows
    assert normalize(got) == normalize(expected), sql


@settings(
    deadline=None,
    max_examples=15,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(sql=seismic_queries(), data=st.data())
def test_repeated_execution_stable_under_caching(sql, data, ali_db, tiny_repo):
    """Re-running any query with a warm cache returns identical answers
    (cache transparency)."""
    executor = TwoStageExecutor(
        ali_db,
        RepositoryBinding(tiny_repo),
        cache=IngestionCache(CachePolicy.UNBOUNDED),
        mount_workers=data.draw(st.sampled_from([1, 4])),
    )
    first = executor.execute(sql).rows
    second = executor.execute(sql).rows
    assert normalize(first) == normalize(second), sql


@settings(
    deadline=None,
    max_examples=15,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(sql=seismic_queries(), data=st.data())
def test_no_dangling_state_after_queries(sql, data, ali_db, tiny_repo):
    """Mount transparency: with the paper's discard policy, executing any
    query leaves the database exactly as it was (D empty, no cache) — with
    or without a mount pool fanning stage 2 out to workers."""
    executor = TwoStageExecutor(
        ali_db,
        RepositoryBinding(tiny_repo),
        mount_workers=data.draw(st.sampled_from([1, 4])),
    )
    executor.execute(sql)
    assert ali_db.catalog.table("D").num_rows == 0
    assert len(executor.cache) == 0
    assert executor.mounts.pool is None  # the pool never outlives stage 2
