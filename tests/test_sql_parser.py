"""Tests for the SQL parser."""

import pytest

from repro.db.errors import SqlSyntaxError
from repro.db.sql import (
    EBetween,
    EBinary,
    EColumn,
    EFunc,
    EIn,
    ELiteral,
    EStar,
    EUnary,
    parse_sql,
)


class TestSelectList:
    def test_single_column(self):
        stmt = parse_sql("SELECT x FROM t")
        assert stmt.items[0].expr == EColumn(None, "x")

    def test_qualified_column(self):
        stmt = parse_sql("SELECT t.x FROM t")
        assert stmt.items[0].expr == EColumn("t", "x")

    def test_alias_with_as(self):
        stmt = parse_sql("SELECT x AS y FROM t")
        assert stmt.items[0].alias == "y"

    def test_alias_without_as(self):
        stmt = parse_sql("SELECT x y FROM t")
        assert stmt.items[0].alias == "y"

    def test_star(self):
        stmt = parse_sql("SELECT * FROM t")
        assert stmt.items[0].expr == EStar()

    def test_qualified_star(self):
        stmt = parse_sql("SELECT t.* FROM t")
        assert stmt.items[0].expr == EStar("t")

    def test_multiple_items(self):
        stmt = parse_sql("SELECT a, b, a + b FROM t")
        assert len(stmt.items) == 3

    def test_distinct(self):
        assert parse_sql("SELECT DISTINCT x FROM t").distinct


class TestFromClause:
    def test_single_table(self):
        stmt = parse_sql("SELECT x FROM t")
        assert stmt.from_tables[0].name == "t"

    def test_table_alias(self):
        stmt = parse_sql("SELECT x FROM table1 AS t")
        assert stmt.from_tables[0].alias == "t"

    def test_comma_join(self):
        stmt = parse_sql("SELECT x FROM a, b")
        assert len(stmt.from_tables) == 2

    def test_inner_join_with_on(self):
        stmt = parse_sql("SELECT x FROM a JOIN b ON a.id = b.id")
        assert len(stmt.joins) == 1
        assert stmt.joins[0].condition is not None

    def test_paper_query1_joins(self):
        stmt = parse_sql(
            "SELECT AVG(D.sample_value) FROM F JOIN R ON F.uri = R.uri "
            "JOIN D ON R.uri = D.uri AND R.record_id = D.record_id "
            "WHERE F.station = 'ISK'"
        )
        assert [j.table.name for j in stmt.joins] == ["R", "D"]
        assert isinstance(stmt.where, EBinary)

    def test_cross_join(self):
        stmt = parse_sql("SELECT x FROM a CROSS JOIN b")
        assert stmt.joins[0].condition is None


class TestWhere:
    def test_comparison(self):
        stmt = parse_sql("SELECT x FROM t WHERE x > 5")
        assert stmt.where == EBinary(">", EColumn(None, "x"), ELiteral(5))

    def test_and_or_precedence(self):
        stmt = parse_sql("SELECT x FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert isinstance(stmt.where, EBinary) and stmt.where.op == "or"
        assert stmt.where.right.op == "and"

    def test_not(self):
        stmt = parse_sql("SELECT x FROM t WHERE NOT a = 1")
        assert stmt.where == EUnary("not", EBinary("=", EColumn(None, "a"), ELiteral(1)))

    def test_between(self):
        stmt = parse_sql("SELECT x FROM t WHERE x BETWEEN 1 AND 5")
        assert stmt.where == EBetween(EColumn(None, "x"), ELiteral(1), ELiteral(5))

    def test_not_between(self):
        stmt = parse_sql("SELECT x FROM t WHERE x NOT BETWEEN 1 AND 5")
        assert stmt.where.negated

    def test_in_list(self):
        stmt = parse_sql("SELECT x FROM t WHERE s IN ('a', 'b')")
        assert stmt.where == EIn(
            EColumn(None, "s"), (ELiteral("a"), ELiteral("b")), False
        )

    def test_not_in(self):
        stmt = parse_sql("SELECT x FROM t WHERE s NOT IN ('a')")
        assert stmt.where.negated

    def test_boolean_literals(self):
        stmt = parse_sql("SELECT x FROM t WHERE true OR false")
        assert stmt.where == EBinary("or", ELiteral(True), ELiteral(False))


class TestExpressions:
    def where(self, text):
        return parse_sql(f"SELECT x FROM t WHERE {text}").parse_error \
            if False else parse_sql(f"SELECT x FROM t WHERE {text}").where

    def item(self, text):
        return parse_sql(f"SELECT {text} FROM t").items[0].expr

    def test_arithmetic_precedence(self):
        expr = self.item("1 + 2 * 3")
        assert expr == EBinary("+", ELiteral(1), EBinary("*", ELiteral(2), ELiteral(3)))

    def test_parentheses(self):
        expr = self.item("(1 + 2) * 3")
        assert expr.op == "*"

    def test_unary_minus(self):
        assert self.item("-x") == EUnary("-", EColumn(None, "x"))

    def test_unary_plus_dropped(self):
        assert self.item("+x") == EColumn(None, "x")

    def test_function_call(self):
        assert self.item("abs(x)") == EFunc("abs", (EColumn(None, "x"),))

    def test_count_star(self):
        assert self.item("COUNT(*)") == EFunc("count", (), star=True)

    def test_count_star_only_for_count(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT SUM(*) FROM t")

    def test_count_distinct(self):
        expr = self.item("COUNT(DISTINCT x)")
        assert expr.distinct

    def test_division_and_modulo(self):
        expr = self.item("a / b % c")
        assert expr.op == "%"


class TestTrailingClauses:
    def test_group_by(self):
        stmt = parse_sql("SELECT s, COUNT(*) FROM t GROUP BY s")
        assert stmt.group_by == [EColumn(None, "s")]

    def test_group_by_multiple(self):
        stmt = parse_sql("SELECT a, b, COUNT(*) FROM t GROUP BY a, b")
        assert len(stmt.group_by) == 2

    def test_having(self):
        stmt = parse_sql(
            "SELECT s, COUNT(*) FROM t GROUP BY s HAVING COUNT(*) > 2"
        )
        assert stmt.having is not None

    def test_order_by_directions(self):
        stmt = parse_sql("SELECT x FROM t ORDER BY a ASC, b DESC, c")
        assert [o.ascending for o in stmt.order_by] == [True, False, True]

    def test_limit(self):
        assert parse_sql("SELECT x FROM t LIMIT 10").limit == 10

    def test_limit_requires_integer(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT x FROM t LIMIT 1.5")


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "SELECT",
            "SELECT x",
            "SELECT x FROM",
            "SELECT x FROM t WHERE",
            "SELECT x FROM t GROUP",
            "SELECT x FROM t trailing garbage (",
            "SELECT x FROM t WHERE x NOT 5",
            "FROM t SELECT x",
            "SELECT x, FROM t",
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(SqlSyntaxError):
            parse_sql(bad)

    def test_missing_on_expression(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT x FROM a JOIN b ON")

    def test_unbalanced_parens(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT (x FROM t")
