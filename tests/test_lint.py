"""The project linter: every rule fires on a seeded violation, the real
tree is clean, and the ``python -m tools.lint`` entry point exits 0/1
accordingly."""

from __future__ import annotations

import subprocess
import sys
import textwrap
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))

from tools.lint import DEFAULT_RULES, run_lint  # noqa: E402
from tools.lint.framework import iter_python_files, parse_file  # noqa: E402
from tools.lint.rules import BlockingCallInLockRule  # noqa: E402


def _lint_source(
    tmp_path: Path,
    source: str,
    relpath: str = "repro/core/mod.py",
    rules=None,
) -> list:
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return run_lint([str(tmp_path)], DEFAULT_RULES if rules is None else rules)


def _rules_fired(violations: list) -> set[str]:
    return {v.rule for v in violations}


# -- each rule fires on a seeded violation -------------------------------------


def test_bare_except_fires(tmp_path):
    violations = _lint_source(
        tmp_path,
        """
        def f():
            try:
                return 1
            except:
                return 2
        """,
        relpath="anywhere.py",
    )
    assert _rules_fired(violations) == {"bare-except"}


def test_extraction_error_wrap_fires_in_ingest(tmp_path):
    violations = _lint_source(
        tmp_path,
        """
        import struct

        def read_header(buf: bytes) -> int:
            if len(buf) < 4:
                raise ValueError("short header")
            raise struct.error("bad")
        """,
        relpath="ingest/formats.py",
    )
    fired = [v for v in violations if v.rule == "extraction-error-wrap"]
    assert len(fired) == 2
    assert "FileIngestError" in fired[0].message


def test_extraction_error_wrap_silent_outside_extraction_paths(tmp_path):
    violations = _lint_source(
        tmp_path,
        """
        def f(x: int) -> int:
            if x < 0:
                raise ValueError("negative")
            return x
        """,
        relpath="other/module.py",
    )
    assert "extraction-error-wrap" not in _rules_fired(violations)


# The lexical blocking-call rule left DEFAULT_RULES (the whole-program
# analyzer in tools/lint/concurrency.py supersedes it with call-graph
# depth) but stays importable; these tests drive it explicitly.


def test_blocking_call_in_lock_fires(tmp_path):
    violations = _lint_source(
        tmp_path,
        """
        import time

        class Service:
            def _work(self) -> None:
                with self._lock:
                    time.sleep(0.1)
        """,
        relpath="anywhere.py",
        rules=[BlockingCallInLockRule()],
    )
    assert _rules_fired(violations) == {"blocking-call-in-lock"}


def test_blocking_call_outside_lock_is_fine(tmp_path):
    violations = _lint_source(
        tmp_path,
        """
        import time

        class Service:
            def _work(self) -> None:
                with self._lock:
                    value = self._state
                time.sleep(0.1)
        """,
        relpath="anywhere.py",
        rules=[BlockingCallInLockRule()],
    )
    assert violations == []


def test_blocking_call_in_nested_function_not_flagged(tmp_path):
    # The nested function runs later, when the lock is not (necessarily)
    # held — the rule must stop at function boundaries.
    violations = _lint_source(
        tmp_path,
        """
        import time

        class Service:
            def _work(self) -> None:
                with self._lock:
                    def backoff() -> None:
                        time.sleep(0.1)
                    self._callback = backoff
        """,
        relpath="anywhere.py",
        rules=[BlockingCallInLockRule()],
    )
    assert violations == []


def test_mutable_default_arg_fires(tmp_path):
    violations = _lint_source(
        tmp_path,
        """
        def f(items=[]):
            return items

        def g(*, mapping=dict()):
            return mapping
        """,
        relpath="anywhere.py",
    )
    fired = [v for v in violations if v.rule == "mutable-default-arg"]
    assert len(fired) == 2


def test_missing_annotations_fires_in_core(tmp_path):
    violations = _lint_source(
        tmp_path,
        """
        def exported(a, b):
            return a

        def _private(c, d):
            return c
        """,
        relpath="repro/core/mod.py",
    )
    fired = [v for v in violations if v.rule == "missing-annotations"]
    # a, b, and the return — the private function is exempt.
    assert len(fired) == 3
    assert all("exported" in v.message for v in fired)


def test_missing_annotations_skips_self(tmp_path):
    violations = _lint_source(
        tmp_path,
        """
        class Thing:
            def method(self, x: int) -> int:
                return x

            @staticmethod
            def helper(y: int) -> int:
                return y
        """,
        relpath="repro/db/plan/mod.py",
    )
    assert violations == []


def test_missing_annotations_silent_outside_core_packages(tmp_path):
    violations = _lint_source(
        tmp_path,
        """
        def loose(a, b):
            return a
        """,
        relpath="repro/harness/mod.py",
    )
    assert violations == []


def test_uninterruptible_sleep_fires_in_core(tmp_path):
    violations = _lint_source(
        tmp_path,
        """
        import time

        def backoff(seconds: float) -> None:
            time.sleep(seconds)
        """,
        relpath="repro/core/mod.py",
    )
    fired = [v for v in violations if v.rule == "uninterruptible-sleep"]
    assert len(fired) == 1
    assert "CancellationToken" in fired[0].message


def test_uninterruptible_sleep_fires_in_ingest(tmp_path):
    violations = _lint_source(
        tmp_path,
        """
        from time import sleep

        def poll() -> None:
            sleep(1.0)
        """,
        relpath="repro/ingest/mod.py",
    )
    assert "uninterruptible-sleep" in _rules_fired(violations)


def test_uninterruptible_sleep_fires_in_serve(tmp_path):
    # The service layer holds queries for other tenants; an uninterruptible
    # sleep there is as bad as one in core, so repro/serve is governed too.
    violations = _lint_source(
        tmp_path,
        """
        import time

        def drain() -> None:
            time.sleep(0.5)
        """,
        relpath="repro/serve/mod.py",
    )
    fired = [v for v in violations if v.rule == "uninterruptible-sleep"]
    assert len(fired) == 1


def test_uninterruptible_sleep_silent_outside_governed_packages(tmp_path):
    violations = _lint_source(
        tmp_path,
        """
        import time

        def wait() -> None:
            time.sleep(0.1)
        """,
        relpath="repro/harness/mod.py",
    )
    assert "uninterruptible-sleep" not in _rules_fired(violations)


def test_uninterruptible_sleep_allowlist_comment(tmp_path):
    violations = _lint_source(
        tmp_path,
        """
        import time

        def settle() -> None:
            time.sleep(0.1)  # lint: allow-uninterruptible-sleep
        """,
        relpath="repro/core/mod.py",
    )
    assert "uninterruptible-sleep" not in _rules_fired(violations)


# -- framework behavior ---------------------------------------------------------


def test_iter_python_files_expands_directories(tmp_path):
    (tmp_path / "a.py").write_text("x = 1\n")
    (tmp_path / "sub").mkdir()
    (tmp_path / "sub" / "b.py").write_text("y = 2\n")
    (tmp_path / "c.txt").write_text("not python\n")
    files = list(iter_python_files([str(tmp_path)]))
    assert [f.name for f in files] == ["a.py", "b.py"]


def test_iter_python_files_dedupes_overlapping_paths(tmp_path):
    # A file named both directly and through its directory must lint (and
    # therefore report) once, not twice.
    target = tmp_path / "mod.py"
    target.write_text("x = 1\n")
    files = list(iter_python_files([str(tmp_path), str(target)]))
    assert len(files) == 1
    # Same via a non-normalized spelling of the directory.
    files = list(
        iter_python_files([str(tmp_path), str(tmp_path / "." / "mod.py")])
    )
    assert len(files) == 1


def test_duplicate_path_args_report_each_violation_once(tmp_path):
    seeded = tmp_path / "seeded.py"
    seeded.write_text(
        "def f():\n    try:\n        pass\n    except:\n        pass\n"
    )
    violations = run_lint([str(tmp_path), str(seeded)], DEFAULT_RULES)
    assert len([v for v in violations if v.rule == "bare-except"]) == 1


def test_parse_file_tolerates_syntax_errors(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n")
    assert parse_file(bad) is None


def test_parent_chain_orders_inner_to_module(tmp_path):
    import ast

    target = tmp_path / "mod.py"
    target.write_text(
        "class C:\n    def m(self):\n        with self._lock:\n"
        "            return 1\n"
    )
    ctx = parse_file(target)
    assert ctx is not None
    ret = next(n for n in ast.walk(ctx.tree) if isinstance(n, ast.Return))
    chain = [type(n).__name__ for n in ctx.parent_chain(ret)]
    assert chain == ["With", "FunctionDef", "ClassDef", "Module"]


def test_violation_sort_is_total_and_stable(tmp_path):
    # run_lint orders by (path, line, col, rule): two findings on one line
    # tie-break by rule name, so output order never depends on rule
    # registration order.
    violations = _lint_source(
        tmp_path,
        """
        import time

        def f(items=[]) -> None:
            time.sleep(0.1)
        """,
        relpath="repro/core/mod.py",
    )
    keys = [(v.path, v.line, v.col, v.rule) for v in violations]
    assert keys == sorted(keys)
    assert len(violations) >= 2


def test_violations_sorted_and_rendered(tmp_path):
    violations = _lint_source(
        tmp_path,
        """
        def z(items=[]):
            try:
                return items
            except:
                return None
        """,
        relpath="anywhere.py",
    )
    assert [v.line for v in violations] == sorted(v.line for v in violations)
    rendered = violations[0].render()
    assert "anywhere.py" in rendered and "[" in rendered


# -- the real tree and the CLI --------------------------------------------------


def test_repo_tree_is_clean():
    violations = run_lint(
        [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")], DEFAULT_RULES
    )
    assert violations == [], "\n".join(v.render() for v in violations)


def test_cli_exits_zero_on_clean_tree():
    proc = subprocess.run(
        [sys.executable, "-m", "tools.lint", "src", "tests"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_cli_exits_one_on_seeded_violation(tmp_path):
    seeded = tmp_path / "seeded.py"
    seeded.write_text("def f():\n    try:\n        pass\n    except:\n        pass\n")
    proc = subprocess.run(
        [sys.executable, "-m", "tools.lint", str(seeded)],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 1
    assert "bare-except" in proc.stdout


def test_cli_json_emits_benchmark_envelope(tmp_path):
    import json

    seeded = tmp_path / "seeded.py"
    seeded.write_text("def f():\n    try:\n        pass\n    except:\n        pass\n")
    out = tmp_path / "lint.json"
    proc = subprocess.run(
        [
            sys.executable, "-m", "tools.lint", str(seeded),
            "--json", str(out),
        ],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 1
    payload = json.loads(out.read_text())
    # The same envelope every benchmarks/*.py --json emits.
    assert payload["benchmark"] == "lint"
    assert payload["params"]["mode"] == "rules"
    assert len(payload["results"]) == 1
    assert payload["results"][0]["rule"] == "bare-except"


def test_cli_concurrency_mode_clean_on_src(tmp_path):
    out = tmp_path / "conc.json"
    proc = subprocess.run(
        [
            sys.executable, "-m", "tools.lint", "--concurrency", "src",
            "--json", str(out),
        ],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    import json

    payload = json.loads(out.read_text())
    assert payload["params"]["mode"] == "concurrency"
    assert payload["results"] == []
