"""Unit and property tests for the column type system."""

import datetime as dt

import pytest
from hypothesis import given, strategies as st

from repro.db.errors import TypeError_
from repro.db.types import (
    DataType,
    common_numeric_type,
    comparable,
    format_timestamp,
    looks_like_timestamp,
    parse_timestamp,
)


class TestParseTimestamp:
    def test_date_only(self):
        assert parse_timestamp("1970-01-01") == 0

    def test_full_datetime(self):
        assert parse_timestamp("1970-01-01T00:00:01") == 1_000_000

    def test_space_separator(self):
        assert parse_timestamp("1970-01-01 00:00:01") == 1_000_000

    def test_fractional_milliseconds(self):
        assert parse_timestamp("1970-01-01T00:00:00.5") == 500_000

    def test_fractional_microseconds(self):
        assert parse_timestamp("1970-01-01T00:00:00.000001") == 1

    def test_paper_query_literal(self):
        micros = parse_timestamp("2010-01-12T22:15:00.000")
        assert micros == 1_263_334_500_000_000

    def test_surrounding_whitespace(self):
        assert parse_timestamp("  1970-01-02  ") == 86_400_000_000

    @pytest.mark.parametrize(
        "bad", ["", "nonsense", "2010-13-01", "2010-01-32", "2010-01-01T25:00:00"]
    )
    def test_invalid_raises(self, bad):
        with pytest.raises(TypeError_):
            parse_timestamp(bad)

    def test_pre_epoch(self):
        assert parse_timestamp("1969-12-31") == -86_400_000_000


class TestFormatTimestamp:
    def test_whole_second(self):
        assert format_timestamp(0) == "1970-01-01T00:00:00"

    def test_with_micros(self):
        assert format_timestamp(1_500_000).startswith("1970-01-01T00:00:01.5")

    @given(st.integers(min_value=0, max_value=4_000_000_000_000_000))
    def test_roundtrip(self, micros):
        assert parse_timestamp(format_timestamp(micros)) == micros


class TestLooksLikeTimestamp:
    def test_positive(self):
        assert looks_like_timestamp("2010-01-12T22:15:00.000")

    def test_negative(self):
        assert not looks_like_timestamp("ISK")
        assert not looks_like_timestamp("123")


class TestDataType:
    def test_numpy_dtypes(self):
        import numpy as np

        assert DataType.INT64.numpy_dtype == np.dtype(np.int64)
        assert DataType.STRING.numpy_dtype == np.dtype(np.int32)
        assert DataType.BOOL.numpy_dtype == np.dtype(np.bool_)

    def test_is_numeric(self):
        assert DataType.INT64.is_numeric
        assert DataType.FLOAT64.is_numeric
        assert not DataType.STRING.is_numeric
        assert not DataType.TIMESTAMP.is_numeric

    def test_common_numeric_type(self):
        assert common_numeric_type(DataType.INT64, DataType.INT64) is DataType.INT64
        assert (
            common_numeric_type(DataType.INT64, DataType.FLOAT64)
            is DataType.FLOAT64
        )

    def test_common_numeric_rejects_strings(self):
        with pytest.raises(TypeError_):
            common_numeric_type(DataType.STRING, DataType.INT64)

    def test_comparable_rules(self):
        assert comparable(DataType.INT64, DataType.FLOAT64)
        assert comparable(DataType.TIMESTAMP, DataType.STRING)
        assert comparable(DataType.STRING, DataType.STRING)
        assert not comparable(DataType.BOOL, DataType.INT64)
        assert not comparable(DataType.STRING, DataType.INT64)


@given(
    st.datetimes(
        min_value=dt.datetime(1980, 1, 1),
        max_value=dt.datetime(2035, 1, 1),
    )
)
def test_parse_matches_datetime(moment):
    text = moment.strftime("%Y-%m-%dT%H:%M:%S.%f")
    expected = int(
        (moment - dt.datetime(1970, 1, 1)).total_seconds() * 1_000_000
    )
    assert abs(parse_timestamp(text) - expected) <= 1
