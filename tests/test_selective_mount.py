"""Record-granular selective mounting (perf tentpole).

Covers the full request flow — rule (1) intervals on plan nodes, the
executor's R-table byte map, :meth:`MountService.request_for`, the
extractors' ``mount_selective``, and the interval-aware ingestion cache —
plus the volume-level selective read's staleness and truncation behavior.
Equivalence is the headline: a narrow-window query must return byte-identical
rows whether mounting is selective or whole-file, serial or pooled, cached
or not.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core import (
    CacheGranularity,
    CachePolicy,
    IngestionCache,
    MountService,
    TwoStageExecutor,
)
from repro.db import Database
from repro.db.errors import StaleFileError, TruncatedFileError
from repro.db.interval import INF, WHOLE_FILE
from repro.ingest import RepositoryBinding, lazy_ingest_metadata
from repro.ingest.formats import MountRequest, RecordSpan, spans_from_record_rows
from repro.ingest.schema import BindingSet
from repro.ingest.xseed_format import XSeedExtractor
from repro.mseed import (
    FileRepository,
    RepositorySpec,
    generate_repository,
    read_selected_records,
)

# Day-long files of 96 records each: dense enough that a 30-minute window
# touches ~3% of every file's records, so record pruning (not file pruning)
# carries the reduction.
DENSE_SPEC = RepositorySpec(
    stations=("ISK", "ANK"),
    channels=("BHE",),
    days=1,
    sample_rate=0.2,
    samples_per_record=180,
)

NARROW_SQL = (
    "SELECT D.uri, D.sample_time, D.sample_value "
    "FROM F JOIN D ON F.uri = D.uri "
    "WHERE D.sample_time >= '2010-01-10T10:00:00.000' "
    "AND D.sample_time < '2010-01-10T10:30:00.000' "
    "ORDER BY D.uri, D.sample_time"
)

WIDE_SQL = (
    "SELECT COUNT(*) AS n, AVG(D.sample_value) AS a "
    "FROM F JOIN D ON F.uri = D.uri "
    "WHERE D.sample_time >= '2010-01-10T06:00:00.000' "
    "AND D.sample_time < '2010-01-10T18:00:00.000'"
)


@pytest.fixture(scope="module")
def dense_repo(tmp_path_factory) -> FileRepository:
    root = tmp_path_factory.mktemp("dense_repo")
    generate_repository(root, DENSE_SPEC)
    return FileRepository(root)


def make_executor(repo, *, selective=True, workers=1, cache=None):
    db = Database()
    lazy_ingest_metadata(db, repo)
    return TwoStageExecutor(
        db,
        RepositoryBinding(repo),
        cache=cache,
        mount_workers=workers,
        selective_mounts=selective,
    )


class TestEquivalence:
    def test_identical_rows_across_all_configurations(self, dense_repo):
        """selective on/off x workers 1/4 x cache retained/discarded."""
        baseline = None
        for selective, workers, policy in itertools.product(
            (False, True), (1, 4), (CachePolicy.DISCARD, CachePolicy.UNBOUNDED)
        ):
            executor = make_executor(
                dense_repo,
                selective=selective,
                workers=workers,
                cache=IngestionCache(policy),
            )
            rows = executor.execute(NARROW_SQL).rows
            assert rows, "narrow window unexpectedly empty"
            if baseline is None:
                baseline = rows
            assert rows == baseline, (
                f"answer drifted at selective={selective}, workers={workers}, "
                f"cache={policy}"
            )

    def test_cached_rerun_matches_and_uses_cache_scans(self, dense_repo):
        executor = make_executor(
            dense_repo, cache=IngestionCache(CachePolicy.UNBOUNDED)
        )
        first = executor.execute(NARROW_SQL).rows
        mounts_after_first = executor.mounts.stats.mounts
        second = executor.execute(NARROW_SQL).rows
        assert second == first
        # The covering entries served the identical request: no re-mounts.
        assert executor.mounts.stats.mounts == mounts_after_first
        assert executor.mounts.stats.cache_scans > 0

    def test_wider_query_remounts_and_widens_coverage(self, dense_repo):
        """A narrow mount's cache entry must not serve a wider request."""
        cache = IngestionCache(CachePolicy.UNBOUNDED)
        executor = make_executor(dense_repo, cache=cache)
        narrow = executor.execute(NARROW_SQL).rows
        full_ex = make_executor(dense_repo, selective=False)
        assert executor.execute(WIDE_SQL).rows == full_ex.execute(WIDE_SQL).rows
        # Widen-on-remount: still one entry per file, now with the wider
        # coverage — and the narrow query is served from it.
        assert len(cache) == len(dense_repo.uris())
        mounts_before = executor.mounts.stats.mounts
        assert executor.execute(NARROW_SQL).rows == narrow
        assert executor.mounts.stats.mounts == mounts_before


class TestAccounting:
    def test_bytes_and_decodes_cut_at_least_5x(self, dense_repo):
        full = make_executor(dense_repo, selective=False)
        full.execute(NARROW_SQL)
        sel = make_executor(dense_repo, selective=True)
        sel.execute(NARROW_SQL)
        assert sel.mounts.stats.selective_mounts == sel.mounts.stats.mounts
        assert sel.mounts.stats.records_skipped > 0
        assert full.mounts.stats.bytes_read >= 5 * sel.mounts.stats.bytes_read
        assert (
            full.mounts.stats.records_decoded
            >= 5 * sel.mounts.stats.records_decoded
        )

    def test_selective_bytes_match_span_lengths_exactly(self, dense_repo):
        """bytes_read charges exactly the byte ranges of selected records."""
        uri = dense_repo.uris()[0]
        path = dense_repo.path_of(uri)
        extractor = XSeedExtractor()
        meta = extractor.extract_metadata(path, uri)
        spans = spans_from_record_rows(meta.record_rows)
        overlapping = [
            s for s in spans
            if s.start_time <= spans[2].end_time  # first three records
        ]
        interval = (spans[0].start_time, spans[2].end_time)
        selected = read_selected_records(path, interval, uri=uri, spans=spans)
        assert selected.bytes_read == sum(s.byte_length for s in overlapping)
        assert selected.records_decoded == len(overlapping)
        assert selected.records_skipped == len(spans) - len(overlapping)

    def test_header_walk_fallback_skips_payloads(self, dense_repo):
        """Without a byte map the walk still never reads skipped payloads."""
        uri = dense_repo.uris()[0]
        path = dense_repo.path_of(uri)
        extractor = XSeedExtractor()
        meta = extractor.extract_metadata(path, uri)
        spans = spans_from_record_rows(meta.record_rows)
        interval = (spans[0].start_time, spans[0].end_time)
        walked = read_selected_records(path, interval, uri=uri)
        mapped = read_selected_records(path, interval, uri=uri, spans=spans)
        assert [rid for rid, _ in walked.records] == [
            rid for rid, _ in mapped.records
        ]
        # The walk pays 64 bytes per header on top of the selected payloads,
        # but far less than the whole file.
        assert walked.bytes_read > mapped.bytes_read
        assert walked.bytes_read < path.stat().st_size


class TestStaleByteMap:
    def _spans(self, repo, uri):
        extractor = XSeedExtractor()
        meta = extractor.extract_metadata(repo.path_of(uri), uri)
        return spans_from_record_rows(meta.record_rows)

    def test_drifted_start_time_raises_stale(self, dense_repo):
        uri = dense_repo.uris()[0]
        spans = list(self._spans(dense_repo, uri))
        bad = spans[1]
        spans[1] = RecordSpan(
            record_id=bad.record_id,
            byte_offset=bad.byte_offset,
            byte_length=bad.byte_length,
            start_time=bad.start_time + 1,  # metadata drifted vs the file
            end_time=bad.end_time + 1,
        )
        with pytest.raises(StaleFileError):
            read_selected_records(
                dense_repo.path_of(uri),
                (spans[1].start_time, spans[1].end_time),
                uri=uri,
                spans=spans,
            )

    def test_span_beyond_file_size_raises_truncated(self, dense_repo):
        uri = dense_repo.uris()[0]
        path = dense_repo.path_of(uri)
        spans = list(self._spans(dense_repo, uri))
        last = spans[-1]
        spans[-1] = RecordSpan(
            record_id=last.record_id,
            byte_offset=last.byte_offset + 10,  # runs past end of file
            byte_length=last.byte_length,
            start_time=last.start_time,
            end_time=last.end_time,
        )
        with pytest.raises(TruncatedFileError):
            read_selected_records(
                path, (last.start_time, last.end_time), uri=uri, spans=spans
            )

    def test_service_surfaces_stale_map_with_uri(self, dense_repo):
        """A stale map through the whole mount path names the file."""
        uri = dense_repo.uris()[0]
        spans = list(self._spans(dense_repo, uri))
        first = spans[0]
        spans[0] = RecordSpan(
            record_id=first.record_id,
            byte_offset=first.byte_offset,
            byte_length=first.byte_length,
            start_time=first.start_time - 7,
            end_time=first.end_time - 7,
        )
        service = MountService(
            BindingSet.single(RepositoryBinding(dense_repo)),
            IngestionCache(CachePolicy.DISCARD),
            record_map_provider=lambda u, t: tuple(spans),
        )
        request = MountRequest(
            interval=(first.start_time - 7, first.end_time - 7),
            records=tuple(spans),
        )
        with pytest.raises(StaleFileError) as excinfo:
            service._extract(uri, "D", request)
        assert excinfo.value.uri == uri


class TestEmptyInterval:
    CONTRADICTORY_SQL = (
        "SELECT COUNT(*) AS n FROM F JOIN D ON F.uri = D.uri "
        "WHERE D.sample_time > '2010-01-10T12:00:00.000' "
        "AND D.sample_time < '2010-01-10T06:00:00.000'"
    )

    def test_contradictory_predicate_never_touches_disk(self, dense_repo):
        executor = make_executor(dense_repo)
        result = executor.execute(self.CONTRADICTORY_SQL)
        assert result.rows == [(0,)]
        assert executor.mounts.stats.mounts == 0
        assert executor.mounts.stats.bytes_read == 0

    def test_contradictory_predicate_survives_missing_file(
        self, tmp_path
    ):
        """The pruned branch is never extracted, so even a deleted file
        cannot fail a query that selects nothing from it."""
        generate_repository(tmp_path, DENSE_SPEC)
        repo = FileRepository(tmp_path)
        db = Database()
        lazy_ingest_metadata(db, repo)
        for uri in repo.uris():
            repo.path_of(uri).unlink()
        executor = TwoStageExecutor(db, RepositoryBinding(repo))
        result = executor.execute(self.CONTRADICTORY_SQL)
        assert result.rows == [(0,)]


class TestRequestFor:
    def test_unbounded_predicate_yields_no_request(self, dense_repo):
        service = MountService(
            BindingSet.single(RepositoryBinding(dense_repo)),
            IngestionCache(CachePolicy.DISCARD),
        )
        assert service.request_for("u", "D", "d", None) is None

    def test_selective_disabled_yields_no_request(self, dense_repo):
        service = MountService(
            BindingSet.single(RepositoryBinding(dense_repo)),
            IngestionCache(CachePolicy.DISCARD),
            selective=False,
        )
        from repro.db.expr import ColumnRef, Comparison, Literal
        from repro.db.types import DataType

        predicate = Comparison(
            ">",
            ColumnRef("d.sample_time", DataType.TIMESTAMP),
            Literal(10, DataType.TIMESTAMP),
        )
        assert service.request_for("u", "D", "d", predicate) is None

    def test_request_semantics(self):
        assert MountRequest().selects_all
        assert not MountRequest().selects_nothing
        empty = MountRequest(interval=(10, 5))
        assert empty.selects_nothing
        bounded = MountRequest(interval=(100, 200))
        assert not bounded.selects_all
        assert bounded.wants(150, 250)
        assert bounded.wants(200, 300)  # closed bounds
        assert not bounded.wants(201, 300)
        assert MountRequest(interval=(-INF, INF)).interval == WHOLE_FILE


class TestTupleGranularityStillWorks:
    def test_tuple_cache_with_selective_mounting(self, dense_repo):
        cache = IngestionCache(CachePolicy.UNBOUNDED, CacheGranularity.TUPLE)
        executor = make_executor(dense_repo, cache=cache)
        first = executor.execute(NARROW_SQL).rows
        second = executor.execute(NARROW_SQL).rows
        assert first == second
        assert executor.mounts.stats.cache_scans > 0
