"""Tests for derived metadata collection and the breakpoint fast path."""

import numpy as np
import pytest

from repro.core import (
    CachePolicy,
    DerivedMetadataStore,
    DERIVED_TABLE,
    IngestionCache,
    TwoStageExecutor,
)
from repro.core.derived import _count_gaps
from repro.ingest import RepositoryBinding


@pytest.fixture()
def derived_executor(fresh_ali_db, tiny_repo):
    derived = DerivedMetadataStore(fresh_ali_db)
    executor = TwoStageExecutor(
        fresh_ali_db,
        RepositoryBinding(tiny_repo),
        derived=derived,
    )
    return executor, derived


SUMMARY_SQL = (
    "SELECT AVG(D.sample_value) FROM F JOIN D ON F.uri = D.uri "
    "WHERE F.station = 'ISK' AND F.channel = 'BHE'"
)


class TestCollection:
    def test_mount_populates_derived_table(self, derived_executor):
        executor, derived = derived_executor
        executor.execute(SUMMARY_SQL)
        table = executor.db.catalog.table(DERIVED_TABLE)
        assert table.num_rows > 0
        uris = set(table.batch.column("uri").to_pylist())
        assert all("ISK" in u and "BHE" in u for u in uris)

    def test_rows_match_actual_statistics(self, derived_executor, tiny_repo):
        from repro.mseed import read_records

        executor, derived = derived_executor
        executor.execute(SUMMARY_SQL)
        table = executor.db.catalog.table(DERIVED_TABLE)
        row = table.batch.rows()[0]
        uri, rid = row[0], row[1]
        records = read_records(tiny_repo.path_of(uri))
        samples = records[rid].samples.astype(np.float64)
        assert row[2] == samples.min()
        assert row[3] == samples.max()
        assert row[4] == pytest.approx(samples.sum())
        assert row[5] == len(samples)

    def test_idempotent_per_file(self, derived_executor):
        executor, derived = derived_executor
        executor.execute(SUMMARY_SQL)
        rows_before = executor.db.catalog.table(DERIVED_TABLE).num_rows
        executor.execute(SUMMARY_SQL)
        assert executor.db.catalog.table(DERIVED_TABLE).num_rows == rows_before

    def test_coverage(self, derived_executor, tiny_repo):
        executor, derived = derived_executor
        assert derived.coverage(tiny_repo.uris()) == 0.0
        executor.execute(SUMMARY_SQL)
        assert 0 < derived.coverage(tiny_repo.uris()) < 1
        assert derived.coverage([]) == 1.0


class TestFastPath:
    def test_second_summary_answered_without_mounting(self, derived_executor):
        executor, derived = derived_executor
        first = executor.execute(SUMMARY_SQL)
        assert not first.breakpoint.answered_from_derived
        second = executor.execute(SUMMARY_SQL)
        assert second.breakpoint.answered_from_derived
        assert second.result.stats.files_mounted == 0
        assert second.rows[0][0] == pytest.approx(first.rows[0][0])

    def test_all_decomposable_funcs(self, derived_executor, ei_db):
        sql = (
            "SELECT COUNT(*), SUM(D.sample_value), AVG(D.sample_value), "
            "MIN(D.sample_value), MAX(D.sample_value) "
            "FROM F JOIN D ON F.uri = D.uri "
            "WHERE F.station = 'ANK' AND F.channel = 'BHZ'"
        )
        executor, derived = derived_executor
        executor.execute(sql)  # warm derived metadata
        outcome = executor.execute(sql)
        assert outcome.breakpoint.answered_from_derived
        expected = ei_db.execute(sql).rows()[0]
        got = outcome.rows[0]
        assert got[0] == expected[0]
        for g, e in zip(got[1:], expected[1:]):
            assert g == pytest.approx(e)

    def test_record_scoped_fast_path(self, derived_executor, ei_db):
        """A record-level join narrows the derived scope per (uri, rid)."""
        sql = (
            "SELECT SUM(D.sample_value) FROM F JOIN R ON F.uri = R.uri "
            "JOIN D ON R.uri = D.uri AND R.record_id = D.record_id "
            "WHERE F.station = 'ISK' AND F.channel = 'BHE' "
            "AND R.record_id = 2"
        )
        executor, derived = derived_executor
        executor.execute(sql)
        outcome = executor.execute(sql)
        assert outcome.breakpoint.answered_from_derived
        assert outcome.rows[0][0] == pytest.approx(
            ei_db.execute(sql).rows()[0][0]
        )

    def test_predicate_on_actual_data_disables_fast_path(self, derived_executor):
        sql = (
            "SELECT AVG(D.sample_value) FROM F JOIN D ON F.uri = D.uri "
            "WHERE F.station = 'ISK' AND F.channel = 'BHE' "
            "AND D.sample_value > 0.0"
        )
        executor, derived = derived_executor
        executor.execute(sql)
        outcome = executor.execute(sql)
        assert not outcome.breakpoint.answered_from_derived
        # Both ISK/BHE day-files are of interest and must actually mount.
        assert outcome.result.stats.files_mounted == 2

    def test_grouped_aggregate_disables_fast_path(self, derived_executor):
        sql = (
            "SELECT F.channel, AVG(D.sample_value) FROM F "
            "JOIN D ON F.uri = D.uri WHERE F.station = 'ISK' "
            "GROUP BY F.channel"
        )
        executor, derived = derived_executor
        executor.execute(sql)
        outcome = executor.execute(sql)
        assert not outcome.breakpoint.answered_from_derived

    def test_uncovered_files_disable_fast_path(self, derived_executor):
        executor, derived = derived_executor
        executor.execute(SUMMARY_SQL)  # covers only ISK/BHE
        other = (
            "SELECT AVG(D.sample_value) FROM F JOIN D ON F.uri = D.uri "
            "WHERE F.station = 'ANK'"
        )
        outcome = executor.execute(other)
        assert not outcome.breakpoint.answered_from_derived


class TestGapCounting:
    def test_no_gaps_in_regular_series(self):
        times = np.arange(0, 100, 10, dtype=np.int64)
        assert _count_gaps(times) == 0

    def test_single_gap(self):
        times = np.array([0, 10, 20, 100, 110, 120], dtype=np.int64)
        assert _count_gaps(times) == 1

    def test_short_series(self):
        assert _count_gaps(np.array([0, 10], dtype=np.int64)) == 0
