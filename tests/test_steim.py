"""Unit and property tests for the Steim1-style codec."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mseed import SteimError, steim_decode, steim_encode


class TestRoundtrip:
    def test_small_deltas(self):
        x = np.cumsum(np.ones(100, dtype=np.int64)).astype(np.int32)
        assert np.array_equal(steim_decode(steim_encode(x), 100), x)

    def test_single_sample(self):
        x = np.array([42], dtype=np.int32)
        assert np.array_equal(steim_decode(steim_encode(x), 1), x)

    def test_constant_signal(self):
        x = np.full(1000, -7, dtype=np.int32)
        assert np.array_equal(steim_decode(steim_encode(x), 1000), x)

    def test_mixed_magnitudes(self):
        rng = np.random.default_rng(1)
        parts = [
            rng.integers(-5, 5, 100),
            rng.integers(-30000, 30000, 100),
            rng.integers(-2**29, 2**29, 50),
        ]
        x = np.cumsum(np.concatenate(parts) // 2).astype(np.int32)
        x = np.clip(x, -2**30, 2**30).astype(np.int32)
        assert np.array_equal(steim_decode(steim_encode(x), len(x)), x)

    def test_empty(self):
        assert steim_encode(np.array([], dtype=np.int32)) == b""
        assert len(steim_decode(b"", 0)) == 0

    def test_negative_start(self):
        x = np.array([-1000000, -999999, -999998], dtype=np.int32)
        assert np.array_equal(steim_decode(steim_encode(x), 3), x)

    def test_length_not_multiple_of_four(self):
        x = np.arange(13, dtype=np.int32)
        assert np.array_equal(steim_decode(steim_encode(x), 13), x)


class TestCompression:
    def test_smooth_signal_compresses(self):
        x = np.cumsum(np.random.default_rng(0).integers(-3, 3, 10000))
        payload = steim_encode(x.astype(np.int32))
        assert len(payload) < 0.4 * x.size * 4

    def test_payload_is_whole_frames(self):
        for n in (1, 5, 63, 64, 200):
            payload = steim_encode(np.arange(n, dtype=np.int32))
            assert len(payload) % 64 == 0

    def test_noisy_signal_does_not_explode(self):
        rng = np.random.default_rng(3)
        x = rng.integers(-2**28, 2**28, 5000).astype(np.int32)
        # Worst case ~ 4/3 overhead for full 32-bit deltas plus headers.
        payload = steim_encode(x)
        assert len(payload) < 1.25 * x.size * 4


class TestErrors:
    def test_two_dimensional_rejected(self):
        with pytest.raises(SteimError):
            steim_encode(np.zeros((2, 2), dtype=np.int32))

    def test_out_of_range_samples_rejected(self):
        with pytest.raises(SteimError):
            steim_encode(np.array([2**33], dtype=np.int64))

    def test_oversized_jump_rejected(self):
        x = np.array([-2**31 + 1, 2**31 - 1], dtype=np.int64)
        with pytest.raises(SteimError):
            steim_encode(x)

    def test_truncated_payload(self):
        payload = steim_encode(np.arange(100, dtype=np.int32))
        with pytest.raises(SteimError):
            steim_decode(payload[:-10], 100)

    def test_wrong_nsamples(self):
        payload = steim_encode(np.arange(16, dtype=np.int32))
        with pytest.raises(SteimError):
            steim_decode(payload, 10_000)

    def test_corrupted_payload_detected(self):
        """Flipping a data word breaks the reverse integration constant."""
        payload = bytearray(steim_encode(np.arange(100, dtype=np.int32)))
        payload[20] ^= 0xFF
        with pytest.raises(SteimError):
            steim_decode(bytes(payload), 100)

    def test_nonempty_payload_for_zero_samples(self):
        payload = steim_encode(np.arange(4, dtype=np.int32))
        with pytest.raises(SteimError):
            steim_decode(payload, 0)


@settings(deadline=None, max_examples=60)
@given(
    st.lists(st.integers(-(2**30), 2**30), min_size=1, max_size=300)
)
def test_roundtrip_property(values):
    x = np.asarray(values, dtype=np.int32)
    # int32 is asymmetric: a delta of exactly -2**31 is encodable, +2**31
    # is not, so mirror the encoder's range check rather than abs().
    diffs = np.diff(x.astype(np.int64))
    if len(x) > 1 and (diffs.min() < -(2**31) or diffs.max() > 2**31 - 1):
        with pytest.raises(SteimError):
            steim_encode(x)
        return
    decoded = steim_decode(steim_encode(x), len(x))
    assert np.array_equal(decoded, x)


@settings(deadline=None, max_examples=20)
@given(st.integers(1, 500), st.integers(0, 2**32 - 1))
def test_roundtrip_random_walk(n, seed):
    rng = np.random.default_rng(seed)
    steps = rng.integers(-1000, 1000, n)
    x = np.cumsum(steps).astype(np.int32)
    assert np.array_equal(steim_decode(steim_encode(x), n), x)
