"""Shared fixtures: a tiny deterministic repository and both databases.

Everything session-scoped here is read-only for tests; tests that mutate
state build their own objects.
"""

from __future__ import annotations

import pytest

from repro.core import TwoStageExecutor
from repro.db import Database
from repro.ingest import RepositoryBinding, eager_ingest, lazy_ingest_metadata
from repro.mseed import FileRepository, RepositorySpec, generate_repository


TINY_SPEC = RepositorySpec(
    stations=("ISK", "ANK"),
    channels=("BHE", "BHZ"),
    days=2,
    sample_rate=0.05,
    samples_per_record=1000,
)


@pytest.fixture(scope="session")
def tiny_spec() -> RepositorySpec:
    return TINY_SPEC


@pytest.fixture(scope="session")
def tiny_repo(tmp_path_factory, tiny_spec) -> FileRepository:
    root = tmp_path_factory.mktemp("tiny_repo")
    generate_repository(root, tiny_spec)
    return FileRepository(root)


@pytest.fixture(scope="session")
def ei_db(tiny_repo) -> Database:
    """Eagerly loaded database (read-only across tests)."""
    db = Database()
    eager_ingest(db, tiny_repo)
    return db


@pytest.fixture(scope="session")
def ali_db(tiny_repo) -> Database:
    """Metadata-only database (read-only across tests)."""
    db = Database()
    lazy_ingest_metadata(db, tiny_repo)
    return db


@pytest.fixture()
def fresh_ali_db(tiny_repo) -> Database:
    """A fresh metadata-only database for tests that mutate state."""
    db = Database()
    lazy_ingest_metadata(db, tiny_repo)
    return db


@pytest.fixture()
def executor(ali_db, tiny_repo) -> TwoStageExecutor:
    """A fresh two-stage executor per test (own cache and stats)."""
    return TwoStageExecutor(ali_db, RepositoryBinding(tiny_repo))


# The paper's Query 1, instantiated inside the tiny repository's data range.
QUERY1 = (
    "SELECT AVG(D.sample_value)\n"
    "FROM F JOIN R ON F.uri = R.uri\n"
    "JOIN D ON R.uri = D.uri AND R.record_id = D.record_id\n"
    "WHERE F.station = 'ISK' AND F.channel = 'BHE'\n"
    "AND R.start_time > '2010-01-10T00:00:00.000'\n"
    "AND R.start_time < '2010-01-10T23:59:59.999'\n"
    "AND D.sample_time > '2010-01-10T10:00:00.000'\n"
    "AND D.sample_time < '2010-01-10T12:00:00.000'"
)

QUERY2 = (
    "SELECT D.sample_time, D.sample_value\n"
    "FROM F JOIN R ON F.uri = R.uri\n"
    "JOIN D ON R.uri = D.uri AND R.record_id = D.record_id\n"
    "WHERE F.station = 'ISK'\n"
    "AND R.start_time > '2010-01-10T00:00:00.000'\n"
    "AND R.start_time < '2010-01-10T23:59:59.999'\n"
    "AND D.sample_time > '2010-01-10T10:00:00.000'\n"
    "AND D.sample_time < '2010-01-10T10:30:00.000'"
)


@pytest.fixture(scope="session")
def query1() -> str:
    return QUERY1


@pytest.fixture(scope="session")
def query2() -> str:
    return QUERY2
