"""Tests for the two-stage executor — including the central invariant of the
reproduction: for every supported query, two-stage ALi execution returns the
same answer as conventional execution over an eagerly loaded database."""

import math

import pytest

from repro.core import (
    AbortAboveCost,
    CachePolicy,
    CacheGranularity,
    IngestionCache,
    LimitFilesAboveCost,
    PER_FILE,
    TwoStageExecutor,
)
from repro.db.errors import QueryAbortedError
from repro.ingest import RepositoryBinding

# A family of queries spanning the supported SQL surface, all answerable by
# both engines. Each must yield identical results under Ei and ALi.
EQUIVALENCE_QUERIES = [
    # the paper's queries
    pytest.param("query1", id="paper-query1"),
    pytest.param("query2", id="paper-query2"),
    # metadata-only
    pytest.param(
        "SELECT station, COUNT(*) AS n FROM F GROUP BY station ORDER BY station",
        id="metadata-group-by",
    ),
    pytest.param(
        "SELECT F.station, R.nsamples FROM F JOIN R ON F.uri = R.uri "
        "WHERE R.record_id = 0 ORDER BY F.uri",
        id="metadata-join",
    ),
    # aggregates over actual data
    pytest.param(
        "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri "
        "WHERE F.station = 'ISK' AND F.channel = 'BHE'",
        id="count-star-join",
    ),
    pytest.param(
        "SELECT MIN(D.sample_value), MAX(D.sample_value) "
        "FROM F JOIN D ON F.uri = D.uri WHERE F.station = 'ANK'",
        id="min-max",
    ),
    pytest.param(
        "SELECT F.channel, AVG(D.sample_value) AS a, COUNT(*) AS n "
        "FROM F JOIN D ON F.uri = D.uri "
        "WHERE F.station = 'ISK' GROUP BY F.channel ORDER BY F.channel",
        id="grouped-aggregate",
    ),
    # retrieval with ordering and limit
    pytest.param(
        "SELECT D.sample_time, D.sample_value "
        "FROM F JOIN D ON F.uri = D.uri "
        "WHERE F.station = 'ISK' AND F.channel = 'BHZ' "
        "AND D.sample_value > 100.0 "
        "ORDER BY D.sample_value DESC, D.sample_time LIMIT 7",
        id="order-limit",
    ),
    # expression projection over mounted data
    pytest.param(
        "SELECT D.sample_value * 2.0 + 1.0 AS scaled "
        "FROM F JOIN D ON F.uri = D.uri "
        "WHERE F.station = 'ANK' AND F.channel = 'BHE' "
        "AND D.sample_value > 500.0 ORDER BY scaled",
        id="expression-projection",
    ),
    # distinct over mounted data
    pytest.param(
        "SELECT DISTINCT D.record_id FROM F JOIN D ON F.uri = D.uri "
        "WHERE F.station = 'ISK' AND F.channel = 'BHE' ORDER BY D.record_id",
        id="distinct-record-ids",
    ),
    # uri predicate directly on the actual table
    pytest.param(
        "SELECT COUNT(*) FROM D WHERE uri = '2010/KO.ISK/KO.ISK..BHE.2010.010.xseed'",
        id="uri-equality-no-metadata",
    ),
    # record-level metadata narrowing
    pytest.param(
        "SELECT SUM(D.sample_value) FROM R JOIN D "
        "ON R.uri = D.uri AND R.record_id = D.record_id "
        "WHERE R.nsamples > 0 AND R.record_id = 1",
        id="record-level-join",
    ),
]


def _resolve(sql, query1, query2):
    return {"query1": query1, "query2": query2}.get(sql, sql)


def _normalize(rows):
    out = []
    for row in rows:
        out.append(
            tuple(
                round(v, 9) if isinstance(v, float) else v for v in row
            )
        )
    return sorted(out)


@pytest.mark.parametrize("sql", EQUIVALENCE_QUERIES)
def test_ali_matches_ei(sql, ei_db, executor, query1, query2):
    sql = _resolve(sql, query1, query2)
    expected = ei_db.execute(sql).rows()
    got = executor.execute(sql).rows
    assert _normalize(got) == _normalize(expected)


@pytest.mark.parametrize("sql", EQUIVALENCE_QUERIES)
def test_per_file_strategy_matches_ei(sql, ei_db, ali_db, tiny_repo, query1, query2):
    sql = _resolve(sql, query1, query2)
    executor = TwoStageExecutor(
        ali_db, RepositoryBinding(tiny_repo), strategy=PER_FILE
    )
    expected = ei_db.execute(sql).rows()
    got = executor.execute(sql).rows
    assert _normalize(got) == _normalize(expected)


class TestBreakpoint:
    def test_files_of_interest_for_query1(self, executor, query1):
        outcome = executor.execute(query1)
        assert outcome.breakpoint.n_files == 1
        (uri,) = outcome.breakpoint.files_of_interest
        assert "ISK" in uri and "BHE" in uri

    def test_stage_timings_populated(self, executor, query1):
        outcome = executor.execute(query1)
        timings = outcome.timings
        assert timings.stage1_seconds > 0
        assert timings.stage2_seconds > 0
        assert timings.total_seconds >= timings.stage2_seconds

    def test_estimate_present(self, executor, query1):
        outcome = executor.execute(query1)
        estimate = outcome.breakpoint.estimate
        assert estimate is not None
        assert estimate.files == 1
        assert estimate.est_tuples > 0
        assert 0 < estimate.selectivity < 1
        assert "files of interest" in estimate.summary()

    def test_breakpoint_summary_text(self, executor, query1):
        outcome = executor.execute(query1)
        text = outcome.breakpoint.summary()
        assert "file(s) of interest" in text
        assert "rule (1)" in text

    def test_empty_files_of_interest_mounts_nothing(self, executor):
        sql = (
            "SELECT AVG(D.sample_value) FROM F JOIN D ON F.uri = D.uri "
            "WHERE F.station = 'NOSUCH'"
        )
        outcome = executor.execute(sql)
        assert outcome.breakpoint.n_files == 0
        assert outcome.result.stats.files_mounted == 0
        assert math.isnan(outcome.rows[0][0])
        assert outcome.breakpoint.estimate.score == 1.0

    def test_worst_case_touches_whole_repository(self, executor, tiny_repo):
        outcome = executor.execute("SELECT COUNT(*) FROM D")
        assert outcome.breakpoint.n_files == len(tiny_repo)
        assert outcome.result.stats.files_mounted == len(tiny_repo)

    def test_metadata_only_query_has_no_mounts(self, executor):
        outcome = executor.execute("SELECT COUNT(*) FROM F")
        assert outcome.result.stats.files_mounted == 0
        assert outcome.breakpoint.files_by_alias == {}


class TestCacheIntegration:
    def test_second_run_uses_cache_scans(self, ali_db, tiny_repo, query1):
        executor = TwoStageExecutor(
            ali_db,
            RepositoryBinding(tiny_repo),
            cache=IngestionCache(CachePolicy.UNBOUNDED),
        )
        first = executor.execute(query1)
        assert first.breakpoint.rewrite.mounts == 1
        second = executor.execute(query1)
        assert second.breakpoint.rewrite.mounts == 0
        assert second.breakpoint.rewrite.cache_scans == 1
        assert first.rows == second.rows

    def test_discard_policy_remounts(self, executor, query1):
        executor.execute(query1)
        outcome = executor.execute(query1)
        assert outcome.breakpoint.rewrite.mounts == 1
        assert outcome.breakpoint.rewrite.cache_scans == 0

    def test_tuple_granular_cache_equivalence(self, ali_db, tiny_repo, ei_db, query1):
        executor = TwoStageExecutor(
            ali_db,
            RepositoryBinding(tiny_repo),
            cache=IngestionCache(
                CachePolicy.UNBOUNDED, CacheGranularity.TUPLE
            ),
        )
        expected = ei_db.execute(query1).rows()
        first = executor.execute(query1)
        second = executor.execute(query1)  # served from tuple cache
        assert second.breakpoint.rewrite.cache_scans == 1
        assert _normalize(first.rows) == _normalize(expected)
        assert _normalize(second.rows) == _normalize(expected)


class TestDestinyPolicies:
    def test_abort_above_cost(self, ali_db, tiny_repo):
        executor = TwoStageExecutor(
            ali_db,
            RepositoryBinding(tiny_repo),
            destiny=AbortAboveCost(max_files=2),
        )
        with pytest.raises(QueryAbortedError) as err:
            executor.execute("SELECT COUNT(*) FROM D")
        assert err.value.breakpoint_info.n_files > 2

    def test_abort_leaves_cheap_queries_alone(self, ali_db, tiny_repo, query1):
        executor = TwoStageExecutor(
            ali_db,
            RepositoryBinding(tiny_repo),
            destiny=AbortAboveCost(max_files=2),
        )
        outcome = executor.execute(query1)
        assert outcome.breakpoint.decision.action.value == "proceed"

    def test_limit_policy_gives_approximate_answer(self, ali_db, tiny_repo):
        executor = TwoStageExecutor(
            ali_db,
            RepositoryBinding(tiny_repo),
            destiny=LimitFilesAboveCost(max_files=2, keep_files=1),
        )
        outcome = executor.execute("SELECT COUNT(*) FROM D")
        assert outcome.approximate
        assert outcome.result.stats.files_mounted == 1

    def test_estimation_can_be_disabled(self, ali_db, tiny_repo, query1):
        executor = TwoStageExecutor(
            ali_db, RepositoryBinding(tiny_repo), estimate=False
        )
        outcome = executor.execute(query1)
        assert outcome.breakpoint.estimate is None


class TestExplain:
    def test_explain_marks_qf(self, executor, query1):
        assert "[Qf]" in executor.explain(query1)

    def test_invalid_strategy_rejected(self, ali_db, tiny_repo):
        with pytest.raises(ValueError):
            TwoStageExecutor(
                ali_db, RepositoryBinding(tiny_repo), strategy="magic"
            )


class TestMultipleActualScans:
    def test_self_join_of_actual_table(self, ei_db, executor):
        """Two scans of D in one query: each gets its own files of interest
        and rule (1) rewrite; d2's join partner is d1 (not Qf), so it falls
        back to all candidate files, filtered by the equi-join."""
        sql = (
            "SELECT COUNT(*) "
            "FROM F JOIN D d1 ON F.uri = d1.uri "
            "JOIN D d2 ON d1.uri = d2.uri AND d1.sample_time = d2.sample_time "
            "WHERE F.station = 'ISK' AND F.channel = 'BHE' "
            "AND d1.sample_time > '2010-01-10T10:00:00' "
            "AND d1.sample_time < '2010-01-10T11:00:00'"
        )
        expected = ei_db.execute(sql).rows()
        outcome = executor.execute(sql)
        assert outcome.rows == expected
        assert len(outcome.breakpoint.files_by_alias) == 2
        # d1 is linked to the metadata branch (both ISK/BHE day-files
        # qualify — no day predicate reaches the metadata), d2 is not.
        assert len(outcome.breakpoint.files_by_alias["d1"]) == 2

    def test_two_windows_compared(self, ei_db, executor):
        """An exploration-style comparison query: the same channel's values
        at two different times (pure actual-data self-join)."""
        sql = (
            "SELECT COUNT(*) FROM D d1 JOIN D d2 "
            "ON d1.uri = d2.uri AND d1.record_id = d2.record_id "
            "WHERE d1.sample_time > '2010-01-10T10:00:00' "
            "AND d1.sample_time < '2010-01-10T10:05:00' "
            "AND d2.sample_time > '2010-01-10T10:00:00' "
            "AND d2.sample_time < '2010-01-10T10:05:00' "
            "AND d1.sample_value < d2.sample_value"
        )
        assert executor.execute(sql).rows == ei_db.execute(sql).rows()
