"""Unit and property tests for columnar vectors and string dictionaries."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.db import Column, DataType, StringDictionary
from repro.db.column import concat_columns
from repro.db.errors import TypeError_


class TestStringDictionary:
    def test_encode_assigns_dense_codes(self):
        d = StringDictionary()
        assert d.encode_one("a") == 0
        assert d.encode_one("b") == 1
        assert d.encode_one("a") == 0
        assert len(d) == 2

    def test_lookup_absent(self):
        d = StringDictionary(["x"])
        assert d.lookup("x") == 0
        assert d.lookup("y") is None

    def test_decode_roundtrip(self):
        d = StringDictionary()
        codes = d.encode(["p", "q", "p", "r"])
        assert list(d.decode(codes)) == ["p", "q", "p", "r"]

    def test_decode_empty_dictionary(self):
        d = StringDictionary()
        assert len(d.decode(np.empty(0, dtype=np.int32))) == 0


class TestColumnConstruction:
    def test_from_pylist_int(self):
        col = Column.from_pylist(DataType.INT64, [1, 2, 3])
        assert col.to_pylist() == [1, 2, 3]
        assert col.values.dtype == np.int64

    def test_from_pylist_string(self):
        col = Column.from_pylist(DataType.STRING, ["a", "b", "a"])
        assert col.to_pylist() == ["a", "b", "a"]
        assert len(col.dictionary) == 2

    def test_from_pylist_timestamp_accepts_strings(self):
        col = Column.from_pylist(
            DataType.TIMESTAMP, ["1970-01-01T00:00:01", 5]
        )
        assert col.to_pylist() == [1_000_000, 5]

    def test_string_column_requires_dictionary(self):
        with pytest.raises(TypeError_):
            Column(DataType.STRING, np.zeros(2, dtype=np.int32))

    def test_constant(self):
        col = Column.constant(DataType.STRING, "x", 4)
        assert col.to_pylist() == ["x"] * 4

    def test_constant_timestamp_string(self):
        col = Column.constant(DataType.TIMESTAMP, "1970-01-01T00:00:01", 2)
        assert col.to_pylist() == [1_000_000, 1_000_000]

    def test_empty(self):
        assert len(Column.empty(DataType.FLOAT64)) == 0
        assert len(Column.empty(DataType.STRING)) == 0

    def test_dtype_coercion_on_init(self):
        col = Column(DataType.FLOAT64, np.array([1, 2, 3]))
        assert col.values.dtype == np.float64


class TestColumnOps:
    def test_take(self):
        col = Column.from_pylist(DataType.INT64, [10, 20, 30])
        assert col.take(np.array([2, 0])).to_pylist() == [30, 10]

    def test_filter(self):
        col = Column.from_pylist(DataType.STRING, ["a", "b", "c"])
        mask = np.array([True, False, True])
        assert col.filter(mask).to_pylist() == ["a", "c"]

    def test_slice(self):
        col = Column.from_pylist(DataType.INT64, [1, 2, 3, 4])
        assert col.slice(1, 3).to_pylist() == [2, 3]

    def test_render_timestamps(self):
        col = Column.from_pylist(DataType.TIMESTAMP, [0])
        assert col.render() == ["1970-01-01T00:00:00"]

    def test_nbytes_accounts_for_dictionary(self):
        plain = Column.from_pylist(DataType.INT64, [1, 2])
        stringy = Column.from_pylist(DataType.STRING, ["abcdef", "ghijkl"])
        assert stringy.nbytes() > stringy.values.nbytes
        assert plain.nbytes() == plain.values.nbytes

    def test_bool_to_pylist(self):
        col = Column(DataType.BOOL, np.array([True, False]))
        values = col.to_pylist()
        assert values == [True, False]
        assert all(isinstance(v, bool) for v in values)


class TestConcatColumns:
    def test_int_concat(self):
        a = Column.from_pylist(DataType.INT64, [1, 2])
        b = Column.from_pylist(DataType.INT64, [3])
        assert concat_columns([a, b]).to_pylist() == [1, 2, 3]

    def test_string_concat_remaps_codes(self):
        a = Column.from_pylist(DataType.STRING, ["x", "y"])
        b = Column.from_pylist(DataType.STRING, ["y", "z"])
        merged = concat_columns([a, b])
        assert merged.to_pylist() == ["x", "y", "y", "z"]
        assert len(merged.dictionary) == 3

    def test_type_mismatch_raises(self):
        a = Column.from_pylist(DataType.INT64, [1])
        b = Column.from_pylist(DataType.FLOAT64, [1.0])
        with pytest.raises(TypeError_):
            concat_columns([a, b])

    def test_empty_input_raises(self):
        with pytest.raises(TypeError_):
            concat_columns([])

    @given(
        st.lists(
            st.lists(st.text(alphabet="abc", max_size=3), max_size=5),
            min_size=1,
            max_size=4,
        )
    )
    def test_string_concat_preserves_values(self, chunks):
        columns = [
            Column.from_pylist(DataType.STRING, chunk) for chunk in chunks
        ]
        merged = concat_columns(columns)
        expected = [v for chunk in chunks for v in chunk]
        assert merged.to_pylist() == expected


@given(st.lists(st.integers(-(2**40), 2**40), max_size=50))
def test_int_roundtrip_property(values):
    col = Column.from_pylist(DataType.INT64, values)
    assert col.to_pylist() == values


@given(st.lists(st.floats(allow_nan=False, allow_infinity=False), max_size=50))
def test_float_roundtrip_property(values):
    col = Column.from_pylist(DataType.FLOAT64, values)
    assert col.to_pylist() == pytest.approx(values)
