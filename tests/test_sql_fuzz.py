"""Fuzz tests: the SQL front-end never crashes with anything but its own
typed errors, no matter the input."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.db.errors import DatabaseError, SqlSyntaxError
from repro.db.sql.lexer import tokenize
from repro.db.sql.parser import parse_sql


@settings(deadline=None, max_examples=200)
@given(st.text(max_size=200))
def test_tokenizer_total(text):
    """Tokenizing arbitrary text either succeeds or raises SqlSyntaxError."""
    try:
        tokens = tokenize(text)
    except SqlSyntaxError:
        return
    assert tokens[-1].type.name == "END"


@settings(deadline=None, max_examples=200)
@given(st.text(max_size=200))
def test_parser_total_on_arbitrary_text(text):
    try:
        parse_sql(text)
    except SqlSyntaxError:
        pass


_SQLISH_TOKENS = st.sampled_from([
    "SELECT", "FROM", "WHERE", "JOIN", "ON", "GROUP", "BY", "ORDER",
    "LIMIT", "AND", "OR", "NOT", "BETWEEN", "IN", "AS", "DISTINCT",
    "AVG", "COUNT", "t", "x", "y", "F", "D", "uri", "sample_value",
    "(", ")", ",", ".", "*", "=", "<", ">", "<=", ">=", "<>", "+", "-",
    "/", "'ISK'", "'a''b'", "42", "1.5", "1e3", "--c\n",
])


@settings(deadline=None, max_examples=300)
@given(st.lists(_SQLISH_TOKENS, max_size=25))
def test_parser_total_on_sqlish_token_soup(parts):
    """Near-miss SQL (valid tokens, arbitrary order) never escapes the
    parser's own error type."""
    try:
        parse_sql(" ".join(parts))
    except SqlSyntaxError:
        pass


@settings(deadline=None, max_examples=100)
@given(parts=st.lists(_SQLISH_TOKENS, max_size=20))
def test_engine_never_crashes_uncontrolled(ali_db, parts):
    """Even when token soup parses, binding/execution fails only with the
    engine's error hierarchy."""
    sql = "SELECT " + " ".join(parts) + " FROM F"
    try:
        ali_db.execute(sql)
    except DatabaseError:
        pass
