"""Property tests for the shared columnar kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.db import Column, DataType
from repro.db.plan.kernels import (
    combined_codes,
    factorize,
    first_occurrence_indices,
    group_by_codes,
    join_codes,
    sort_indices,
)


def int_col(values):
    return Column.from_pylist(DataType.INT64, values)


def str_col(values):
    return Column.from_pylist(DataType.STRING, values)


class TestFactorize:
    def test_codes_preserve_order(self):
        codes, card = factorize(int_col([30, 10, 20, 10]))
        assert card == 3
        assert codes[1] < codes[2] < codes[0]
        assert codes[1] == codes[3]

    def test_string_codes_follow_lexicographic_order(self):
        codes, _ = factorize(str_col(["b", "a", "c"]))
        assert codes[1] < codes[0] < codes[2]

    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=80))
    def test_equality_preserved(self, values):
        codes, _ = factorize(int_col(values))
        for i in range(len(values)):
            for j in range(i + 1, min(i + 5, len(values))):
                assert (codes[i] == codes[j]) == (values[i] == values[j])


class TestCombinedCodes:
    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.sampled_from("xyz")),
            min_size=1,
            max_size=60,
        )
    )
    def test_tuple_equality(self, rows):
        codes = combined_codes(
            [int_col([a for a, _ in rows]), str_col([b for _, b in rows])]
        )
        for i in range(len(rows)):
            for j in range(i + 1, min(i + 6, len(rows))):
                assert (codes[i] == codes[j]) == (rows[i] == rows[j])

    def test_requires_columns(self):
        with pytest.raises(ValueError):
            combined_codes([])


class TestGroupByCodes:
    def test_groups_and_representatives(self):
        codes = np.array([5, 5, 2, 5, 2])
        group_ids, representatives, n = group_by_codes(codes)
        assert n == 2
        assert group_ids[0] == group_ids[1] == group_ids[3]
        assert group_ids[2] == group_ids[4]
        assert set(representatives.tolist()) == {0, 2}


class TestFirstOccurrence:
    @given(st.lists(st.integers(0, 5), min_size=1, max_size=60))
    def test_matches_python_dedupe(self, values):
        codes = np.asarray(values, dtype=np.int64)
        keep = first_occurrence_indices(codes)
        expected = sorted({v: i for i, v in reversed(list(enumerate(values)))}.values())
        assert keep.tolist() == expected


class TestJoinCodes:
    @given(
        st.lists(st.sampled_from("abcd"), min_size=1, max_size=30),
        st.lists(st.sampled_from("abcd"), min_size=1, max_size=30),
    )
    def test_cross_side_equality(self, left, right):
        left_codes, right_codes = join_codes([str_col(left)], [str_col(right)])
        for i, lv in enumerate(left):
            for j, rv in enumerate(right):
                assert (left_codes[i] == right_codes[j]) == (lv == rv)

    def test_arity_mismatch(self):
        with pytest.raises(ValueError):
            join_codes([int_col([1])], [])


class TestSortIndices:
    @given(
        st.lists(
            st.tuples(st.integers(-5, 5), st.sampled_from("pq")),
            min_size=1,
            max_size=60,
        )
    )
    def test_matches_python_sort(self, rows):
        a = int_col([x for x, _ in rows])
        b = str_col([y for _, y in rows])
        order = sort_indices([a, b], [True, False])
        got = [rows[i] for i in order]
        expected = sorted(rows, key=lambda r: (r[0], tuple(-ord(c) for c in r[1])))
        assert got == expected

    def test_stability(self):
        rows = [(1, "x"), (1, "y"), (1, "z")]
        order = sort_indices([int_col([r[0] for r in rows])], [True])
        assert order.tolist() == [0, 1, 2]

    def test_requires_keys(self):
        with pytest.raises(ValueError):
            sort_indices([], [])
