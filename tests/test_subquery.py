"""Tests for uncorrelated ``IN (SELECT ...)`` subqueries (semi-joins)."""

import pytest

from repro.db import ColumnDef, Database, DataType, TableSchema
from repro.db.errors import BindError, SqlSyntaxError
from repro.db.sql.ast import ESubqueryIn
from repro.db.sql.parser import parse_sql


@pytest.fixture()
def db():
    db = Database()
    db.create_table(
        TableSchema("orders", [
            ColumnDef("id", DataType.INT64),
            ColumnDef("customer", DataType.STRING),
            ColumnDef("total", DataType.FLOAT64),
        ])
    )
    db.create_table(
        TableSchema("vips", [ColumnDef("name", DataType.STRING)])
    )
    db.insert_rows("orders", [
        (1, "ada", 10.0), (2, "bob", 20.0), (3, "ada", 30.0), (4, "cyd", 5.0),
    ])
    db.insert_rows("vips", [("ada",), ("cyd",)])
    return db


class TestParsing:
    def test_in_subquery_parses(self):
        stmt = parse_sql(
            "SELECT id FROM orders WHERE customer IN (SELECT name FROM vips)"
        )
        assert isinstance(stmt.where, ESubqueryIn)
        assert stmt.where.subquery.from_tables[0].name == "vips"

    def test_not_in_subquery(self):
        stmt = parse_sql(
            "SELECT id FROM orders WHERE customer NOT IN "
            "(SELECT name FROM vips)"
        )
        assert stmt.where.negated

    def test_nested_clauses_inside_subquery(self):
        stmt = parse_sql(
            "SELECT id FROM orders WHERE customer IN "
            "(SELECT name FROM vips WHERE name <> 'bob' ORDER BY name LIMIT 5)"
        )
        assert stmt.where.subquery.limit == 5

    def test_unbalanced_subquery_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql(
                "SELECT id FROM orders WHERE customer IN (SELECT name FROM vips"
            )


class TestExecution:
    def test_in_subquery(self, db):
        rows = db.execute(
            "SELECT id FROM orders WHERE customer IN "
            "(SELECT name FROM vips) ORDER BY id"
        ).rows()
        assert rows == [(1,), (3,), (4,)]

    def test_not_in_subquery(self, db):
        rows = db.execute(
            "SELECT id FROM orders WHERE customer NOT IN "
            "(SELECT name FROM vips) ORDER BY id"
        ).rows()
        assert rows == [(2,)]

    def test_combined_with_plain_predicates(self, db):
        rows = db.execute(
            "SELECT id FROM orders WHERE total > 8.0 AND customer IN "
            "(SELECT name FROM vips) ORDER BY id"
        ).rows()
        assert rows == [(1,), (3,)]

    def test_subquery_with_own_predicate(self, db):
        rows = db.execute(
            "SELECT id FROM orders WHERE customer IN "
            "(SELECT name FROM vips WHERE name = 'cyd')"
        ).rows()
        assert rows == [(4,)]

    def test_empty_subquery_result(self, db):
        rows = db.execute(
            "SELECT id FROM orders WHERE customer IN "
            "(SELECT name FROM vips WHERE name = 'zzz')"
        ).rows()
        assert rows == []

    def test_numeric_membership(self, db):
        rows = db.execute(
            "SELECT customer FROM orders WHERE id IN "
            "(SELECT id FROM orders WHERE total > 15.0) ORDER BY id"
        ).rows()
        assert rows == [("bob",), ("ada",)]

    def test_aggregating_subquery(self, db):
        rows = db.execute(
            "SELECT id FROM orders WHERE customer IN "
            "(SELECT customer FROM orders GROUP BY customer "
            "HAVING COUNT(*) > 1) ORDER BY id"
        ).rows()
        assert rows == [(1,), (3,)]


class TestValidation:
    def test_multi_column_subquery_rejected(self, db):
        with pytest.raises(BindError, match="exactly one column"):
            db.execute(
                "SELECT id FROM orders WHERE customer IN "
                "(SELECT name, name FROM vips)"
            )

    def test_type_mismatch_rejected(self, db):
        with pytest.raises(BindError, match="membership"):
            db.execute(
                "SELECT id FROM orders WHERE id IN (SELECT name FROM vips)"
            )

    def test_subquery_under_or_rejected(self, db):
        with pytest.raises(BindError, match="top-level WHERE conjunct"):
            db.execute(
                "SELECT id FROM orders WHERE total > 5.0 OR customer IN "
                "(SELECT name FROM vips)"
            )


class TestTwoStageIntegration:
    def test_metadata_subquery_narrows_files(self, executor, ei_db):
        """A genuinely explorative use: 'average over the station-days whose
        record count is typical' — the membership test runs entirely on
        metadata in stage 1."""
        sql = (
            "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri "
            "WHERE F.uri IN (SELECT uri FROM R WHERE record_id = 4) "
            "AND F.station = 'ISK'"
        )
        got = executor.execute(sql)
        assert got.rows == ei_db.execute(sql).rows()
        # Membership + station predicates evaluated as metadata: only ISK
        # files with a 5th record were mounted.
        assert got.result.stats.files_mounted == got.breakpoint.n_files
