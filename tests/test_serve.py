"""The service layer: shared-work scheduling, tenancy, and equivalence.

Four obligations, each with its own cell:

* **Equivalence** — a service answer must be byte-identical to the same
  query in an independent session, across scheduler worker counts and both
  ends of the throughput ↔ fairness knob. Sharing is an optimization, never
  a semantic.
* **Fairness** — the scheduler's aging term must eventually outrank any
  popularity bias: a lone low-overlap query beats a fresh popular task once
  it has waited long enough, even at ``throughput_bias=1.0``.
* **Isolation** — one tenant hammering a broken file trips only its own
  circuit breaker; another tenant's queries stay byte-identical. Admission
  control sheds deterministically on queue depth and on an exhausted
  tenant byte ledger.
* **Ownership** — the shared cache's first-store-wins story holds under a
  thread hammer: one entry, exact byte accounting, every loser counted.
"""

from __future__ import annotations

import threading

import pytest

from repro.core import IngestionCache, TwoStageExecutor
from repro.core.cache import CachePolicy
from repro.core.mounting import ExtractResult
from repro.db import Database
from repro.db.errors import (
    CircuitOpenError,
    DatabaseError,
    FileIngestError,
    QueryShedError,
)
from repro.db.column import Column
from repro.db.table import ColumnBatch
from repro.db.types import DataType
from repro.ingest import RepositoryBinding, lazy_ingest_metadata
from repro.ingest.formats import MountRequest
from repro.mseed import FileRepository, RepositorySpec, generate_repository
from repro.serve import (
    MountScheduler,
    QueryService,
    SchedulerPolicy,
    TenantPolicy,
    build_workload,
    run_comparison,
    run_service_load,
    run_standalone_baseline,
)
from repro.testing import (
    RECOVERABLE_KINDS,
    TRANSIENT_OSERROR,
    FaultPlan,
    FaultSpec,
)

SERVE_SEED = 20130610  # same fixed seed discipline as the chaos suite

# tiny_spec scale; records span 20000s so the driver's mid-day windows fall
# in a record whose start_time clears the strict R.start_time > day_start
# predicate (a spec with day-long records would make every answer empty).
SPEC = RepositorySpec(
    stations=("ISK", "ANK"),
    channels=("BHE", "BHZ"),
    days=2,
    sample_rate=0.05,
    samples_per_record=1000,
)


@pytest.fixture(scope="module")
def repo(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve_repo")
    generate_repository(root, SPEC)
    return FileRepository(root)


@pytest.fixture(scope="module")
def metadata_db(repo):
    db = Database()
    lazy_ingest_metadata(db, repo)
    return db


def _service(repo, db=None, **kwargs):
    kwargs.setdefault(
        "scheduler_policy", SchedulerPolicy(batch_window_seconds=0.01)
    )
    return QueryService(repo, db=db, **kwargs)


# -- scheduler unit cells (fake clock, no threads) ---------------------------


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def _batch(name: str, values: list[int]) -> ColumnBatch:
    return ColumnBatch([name], [Column.from_pylist(DataType.INT64, values)])


def _result(tag: str = "x") -> ExtractResult:
    return ExtractResult(
        batch=_batch(tag, [0]), io_seconds=0.0, bytes_read=100
    )


class TestSchedulerUnit:
    def _scheduler(self, extract, bias=1.0, clock=None):
        return MountScheduler(
            extract,
            policy=SchedulerPolicy(
                throughput_bias=bias,
                aging_seconds=0.25,
                batch_window_seconds=0.0,
            ),
            workers=0,
            clock=clock or FakeClock(),
        )

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SchedulerPolicy(throughput_bias=1.5)
        with pytest.raises(ValueError):
            SchedulerPolicy(aging_seconds=0.0)
        with pytest.raises(ValueError):
            SchedulerPolicy(batch_window_seconds=-1.0)

    def test_throughput_bias_prefers_popular_task(self):
        clock = FakeClock()
        sched = self._scheduler(lambda *a: _result(), clock=clock)
        sched.register(1, [("d", "lone.xseed", None)])
        sched.register(2, [("d", "popular.xseed", None)])
        sched.register(3, [("d", "popular.xseed", None)])
        sched.register(4, [("d", "popular.xseed", None)])
        # Same age, three waiters vs one: the biased knob picks popularity.
        assert sched.peek_next() == ("d", "popular.xseed")

    def test_fifo_at_zero_bias(self):
        clock = FakeClock()
        sched = self._scheduler(lambda *a: _result(), bias=0.0, clock=clock)
        sched.register(1, [("d", "first.xseed", None)])
        clock.now = 0.1
        sched.register(2, [("d", "second.xseed", None)])
        sched.register(3, [("d", "second.xseed", None)])
        # Bias 0 ignores the crowd entirely: strict arrival order.
        assert sched.peek_next() == ("d", "first.xseed")

    def test_starvation_aging_beats_full_throughput_bias(self):
        """A lone old task outranks a fresh popular one even at bias=1.0."""
        clock = FakeClock()
        sched = self._scheduler(lambda *a: _result(), bias=1.0, clock=clock)
        sched.register(1, [("d", "lone.xseed", None)])
        # Heavy overlap load arrives much later; the lone task has aged.
        clock.now = 2.0
        for client in (2, 3, 4, 5):
            sched.register(client, [("d", "popular.xseed", None)])
        # lone: 1 waiter + 2.0s/0.25s aging = 9.0; popular: 4 waiters + 0.
        assert sched.peek_next() == ("d", "lone.xseed")
        # And a *fresh* lone task would lose to the same crowd.
        sched.register(6, [("d", "fresh.xseed", None)])
        tasks = sched.register(1, [("d", "lone.xseed", None)])
        result, _ = sched.take(1, tasks[("d", "lone.xseed")])
        assert sched.peek_next() == ("d", "popular.xseed")

    def test_shared_extraction_single_flight(self):
        calls: list[str] = []

        def extract(uri, table, request):
            calls.append(uri)
            return _result()

        sched = self._scheduler(extract)
        tasks_a = sched.register(1, [("d", "shared.xseed", None)])
        tasks_b = sched.register(2, [("d", "shared.xseed", None)])
        result_a, _ = sched.take(1, tasks_a[("d", "shared.xseed")])
        result_b, _ = sched.take(2, tasks_b[("d", "shared.xseed")])
        assert calls == ["shared.xseed"]
        assert result_a is result_b
        assert sched.stats.grants == 2
        assert sched.stats.shared_grants == 1
        assert sched.stats.bytes_shared == 100
        # Fully consumed: the task table must not leak.
        assert sched.pending_tasks() == 0

    def test_pending_requests_hull_merge(self):
        seen: list[MountRequest] = []

        def extract(uri, table, request):
            seen.append(request)
            return _result()

        sched = self._scheduler(extract)
        tasks = sched.register(
            1, [("d", "f.xseed", MountRequest(interval=(100, 200)))]
        )
        sched.register(
            2, [("d", "f.xseed", MountRequest(interval=(150, 400)))]
        )
        sched.take(1, tasks[("d", "f.xseed")])
        assert seen[0].interval == (100, 400)

    def test_failure_delivered_to_every_waiter_then_fresh_task(self):
        calls: list[str] = []

        def extract(uri, table, request):
            calls.append(uri)
            raise FileIngestError("boom", uri=uri)

        sched = self._scheduler(extract)
        tasks_a = sched.register(1, [("d", "bad.xseed", None)])
        tasks_b = sched.register(2, [("d", "bad.xseed", None)])
        with pytest.raises(FileIngestError):
            sched.take(1, tasks_a[("d", "bad.xseed")])
        with pytest.raises(FileIngestError):
            sched.take(2, tasks_b[("d", "bad.xseed")])
        assert calls == ["bad.xseed"]  # one attempt, both waiters told
        # A later query never inherits the stale failure: fresh attempt.
        tasks_c = sched.register(3, [("d", "bad.xseed", None)])
        with pytest.raises(FileIngestError):
            sched.take(3, tasks_c[("d", "bad.xseed")])
        assert calls == ["bad.xseed", "bad.xseed"]
        assert sched.stats.tasks_failed == 2

    def test_withdraw_drops_unconsumed_interest(self):
        sched = self._scheduler(lambda *a: _result())
        tasks = sched.register(1, [("d", "f.xseed", None)])
        sched.withdraw(1, list(tasks.values()))
        assert sched.stats.withdrawn == 1
        assert sched.pending_tasks() == 0


class TestSchedulerLifecycle:
    def test_concurrent_start_spawns_workers_once(self):
        """Regression: start() used to check ``self._threads`` outside the
        lock, so two racing callers could each see the empty list and spawn
        a double complement of workers."""
        workers = 3
        sched = MountScheduler(
            lambda *a: _result(),
            policy=SchedulerPolicy(batch_window_seconds=0.0),
            workers=workers,
        )
        barrier = threading.Barrier(4)

        def start() -> None:
            barrier.wait(2.0)
            sched.start()

        starters = [threading.Thread(target=start) for _ in range(4)]
        for t in starters:
            t.start()
        for t in starters:
            t.join(2.0)
        with sched._lock:
            spawned = list(sched._threads)
        assert len(spawned) == workers
        sched.close()
        assert all(not t.is_alive() for t in spawned)

    def test_close_is_idempotent_and_restartable(self):
        sched = MountScheduler(
            lambda *a: _result(),
            policy=SchedulerPolicy(batch_window_seconds=0.0),
            workers=2,
        )
        sched.start()
        sched.close()
        sched.close()  # second close finds no threads to join
        sched.start()  # restart spawns a fresh complement
        with sched._lock:
            assert len(sched._threads) == 2
        sched.close()


# -- end-to-end equivalence ---------------------------------------------------


class TestServiceEquivalence:
    @pytest.mark.parametrize(
        "workers,bias", [(1, 0.0), (1, 1.0), (4, 0.0), (4, 1.0)]
    )
    def test_answers_byte_identical_across_grid(self, repo, workers, bias):
        service = QueryService(
            repo,
            mount_workers=workers,
            scheduler_policy=SchedulerPolicy(
                throughput_bias=bias, batch_window_seconds=0.01
            ),
        )
        try:
            report = run_comparison(
                repo, SPEC, clients=4, queries_per_client=2, service=service
            )
        finally:
            service.close()
        assert report.identical, report.mismatches
        assert report.service_stats.queries_failed == 0
        # Never worse than independent sessions on aggregate disk bytes.
        assert report.service.mount_bytes <= report.baseline.mount_bytes
        # Every query ended consumed or withdrawn: no leaked scheduler tasks.
        assert service.scheduler.pending_tasks() == 0

    def test_concurrent_load_shares_extractions(self, repo):
        workload = build_workload(SPEC, clients=4, queries_per_client=2)
        service = _service(repo)
        try:
            result = run_service_load(service, workload)
            stats = service.stats()
        finally:
            service.close()
        assert all(o.error is None for o in result.outcomes)
        # 8 queries over 2 distinct files: sharing must have happened via
        # the scheduler, the cache fast path, or both.
        assert (
            stats.scheduler.shared_grants + stats.cache.hits
        ) > 0, stats.describe()

    def test_session_runs_unchanged_over_tenant_client(self, repo):
        from repro.explore import ExplorationSession

        with _service(repo) as service:
            session = ExplorationSession(engine=service.client("sci"))
            value = session.quick_look("ISK", "BHE", SPEC.start_day)
        standalone = ExplorationSession(
            engine=TwoStageExecutor(
                _fresh_db(repo), RepositoryBinding(repo)
            )
        )
        assert value == standalone.quick_look("ISK", "BHE", SPEC.start_day)


def _fresh_db(repo):
    db = Database()
    lazy_ingest_metadata(db, repo)
    return db


# -- chaos: faults under concurrency, tenant isolation -----------------------


class TestServeChaos:
    def test_recoverable_faults_absorbed_under_load(self, repo):
        workload = build_workload(SPEC, clients=3, queries_per_client=2)
        plan = FaultPlan.seeded(
            SERVE_SEED,
            repo.uris(),
            kinds=RECOVERABLE_KINDS,
            fault_rate=1.0,
            times=1,  # within the shared extractor's retry budget
        )
        assert plan.specs
        service = _service(repo)
        try:
            with plan.install():
                noisy = run_service_load(service, workload)
        finally:
            service.close()
        baseline = run_standalone_baseline(
            _fresh_db(repo), repo, workload
        )
        assert noisy.answers() == baseline.answers()
        assert all(o.error is None for o in noisy.outcomes)

    def test_tenant_breaker_isolation(self, repo, metadata_db):
        """Tenant A hammering a permanently broken file trips only A's
        breaker; tenant B's answers stay byte-identical to standalone."""
        f_rows = metadata_db.execute(
            "SELECT uri, station, channel, start_time FROM F ORDER BY uri"
        ).rows()
        victim_uri, v_station, v_channel, v_start = f_rows[0]
        other = next(
            r for r in f_rows if (r[1], r[2]) != (v_station, v_channel)
        )

        def day_query(station, channel, start_us):
            from repro.serve.driver import _rows_query

            base = int(start_us) + 6 * 3600 * 1_000_000
            return _rows_query(
                station, channel, int(start_us), base, base + 40 * 60 * 1_000_000
            )

        sql_a = day_query(v_station, v_channel, v_start)
        sql_b = day_query(other[1], other[2], other[3])
        plan = FaultPlan(
            [FaultSpec(uri_suffix=victim_uri, kind=TRANSIENT_OSERROR, times=-1)]
        )
        service = _service(repo, db=metadata_db)
        try:
            with plan.install():
                # Three failures open tenant A's breaker...
                for _ in range(3):
                    with pytest.raises(FileIngestError):
                        service.execute(sql_a, tenant="noisy")
                # ...after which A is refused outright, without extraction.
                with pytest.raises(CircuitOpenError):
                    service.execute(sql_a, tenant="noisy")
                # Tenant B is untouched: same faults installed, different
                # file, own breaker — byte-identical to standalone.
                served = service.execute(sql_b, tenant="quiet").rows
        finally:
            service.close()
        standalone = (
            TwoStageExecutor(_fresh_db(repo), RepositoryBinding(repo))
            .execute(sql_b)
            .rows
        )
        assert served == standalone
        snapshot = {t.name: t for t in service.stats().tenants}
        assert snapshot["noisy"].failed == 4
        assert snapshot["quiet"].failed == 0


# -- admission control --------------------------------------------------------


class TestAdmission:
    def test_queue_depth_shedding(self, repo, metadata_db):
        service = _service(
            repo,
            db=metadata_db,
            default_policy=TenantPolicy(max_queue_depth=0),
        )
        try:
            with pytest.raises(QueryShedError) as excinfo:
                service.execute("SELECT COUNT(*) FROM F", tenant="t0")
        finally:
            service.close()
        assert excinfo.value.tenant == "t0"
        assert isinstance(excinfo.value, DatabaseError)
        snapshot = {t.name: t for t in service.stats().tenants}
        assert snapshot["t0"].shed == 1
        assert snapshot["t0"].admitted == 0

    def test_byte_ledger_shedding(self, repo, metadata_db):
        workload = build_workload(SPEC, clients=1, queries_per_client=1)
        sql = workload[0][0]
        service = _service(
            repo,
            db=metadata_db,
            default_policy=TenantPolicy(max_total_mount_bytes=1),
        )
        try:
            # First query is admitted (ledger empty) and mounts past the
            # allowance; the next admission for the same tenant sheds.
            first = service.execute(sql, tenant="greedy")
            assert first.result.num_rows > 0
            with pytest.raises(QueryShedError):
                service.execute(sql, tenant="greedy")
            # A different tenant has its own ledger and is unaffected.
            other = service.execute(sql, tenant="frugal")
            assert other.rows == first.rows
        finally:
            service.close()
        snapshot = {t.name: t for t in service.stats().tenants}
        assert snapshot["greedy"].bytes_charged > 1
        assert snapshot["greedy"].shed == 1
        assert snapshot["frugal"].shed == 0

    def test_closed_service_sheds(self, repo, metadata_db):
        service = _service(repo, db=metadata_db)
        service.close()
        with pytest.raises(QueryShedError):
            service.execute("SELECT COUNT(*) FROM F")


# -- cache ownership under concurrency ---------------------------------------


class TestCacheOwnership:
    def test_first_store_wins_hammer(self):
        cache = IngestionCache(policy=CachePolicy.UNBOUNDED)
        batch = _batch("v", list(range(64)))
        threads = 16
        barrier = threading.Barrier(threads)

        def store():
            barrier.wait()
            cache.store("contested.xseed", batch)

        workers = [threading.Thread(target=store) for _ in range(threads)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert len(cache) == 1
        assert cache.stats.insertions == 1
        assert cache.stats.duplicate_stores == threads - 1
        assert cache.stats.current_bytes == batch.nbytes()


class TestSchedulerHints:
    """Speculative prefetch tasks: run only when idle, never delay a real
    query, and their results land in the shared cache via the callback."""

    def _scheduler(self, extract, clock=None, workers=0, on_hint_result=None):
        return MountScheduler(
            extract,
            policy=SchedulerPolicy(
                throughput_bias=1.0,
                aging_seconds=0.25,
                batch_window_seconds=0.0,
            ),
            workers=workers,
            clock=clock or FakeClock(),
            on_hint_result=on_hint_result,
        )

    def test_hint_runs_only_when_no_real_task_pends(self):
        sched = self._scheduler(lambda *a: _result())
        assert sched.hint([("d", "spec.xseed", None)]) == 1
        assert sched.stats.hints_registered == 1
        assert sched.peek_next() == ("d", "spec.xseed")
        # A real query arrives: it outranks the older hint outright.
        sched.register(1, [("d", "real.xseed", None)])
        assert sched.peek_next() == ("d", "real.xseed")

    def test_hint_on_live_key_is_skipped(self):
        sched = self._scheduler(lambda *a: _result())
        sched.register(1, [("d", "busy.xseed", None)])
        assert sched.hint([("d", "busy.xseed", None)]) == 0
        assert sched.stats.hints_registered == 0
        # And a second hint on an already-hinted key is also one task only.
        assert sched.hint([("d", "spec.xseed", None)]) == 1
        assert sched.hint([("d", "spec.xseed", None)]) == 0

    def test_real_client_joins_pending_hint(self):
        """A query landing on a hinted key rides the same task — no second
        extraction, normal take() semantics."""
        calls = []

        def extract(uri, table, request):
            calls.append(uri)
            return _result()

        sched = self._scheduler(extract)
        sched.hint([("d", "shared.xseed", None)])
        joined = sched.register(7, [("d", "shared.xseed", None)])
        task = joined[("d", "shared.xseed")]
        result, _ = sched.take(7, task)
        assert result.batch.num_rows == 1
        assert calls == ["shared.xseed"]
        assert sched.peek_next() is None

    def test_pending_hint_survives_waiter_reaping(self):
        """Withdrawing the joining client must not reap the still-pending
        hint — speculation keeps its slot until a worker runs it."""
        sched = self._scheduler(lambda *a: _result())
        sched.hint([("d", "spec.xseed", None)])
        joined = sched.register(1, [("d", "spec.xseed", None)])
        sched.withdraw(1, list(joined.values()))
        assert sched.peek_next() == ("d", "spec.xseed")
        assert sched.pending_tasks() == 1

    def test_worker_runs_hint_and_stores_via_callback(self):
        stored = []

        def on_hint_result(key, request, result):
            stored.append((key, request, result.bytes_read))

        sched = self._scheduler(
            lambda *a: _result(),
            workers=1,
            on_hint_result=on_hint_result,
        )
        try:
            sched.start()
            assert sched.hint([("d", "spec.xseed", None)]) == 1
            pacer = threading.Event()
            for _ in range(500):
                if sched.stats.hint_extractions == 1:
                    break
                pacer.wait(0.01)
            assert sched.stats.hint_extractions == 1
            assert stored == [(("d", "spec.xseed"), None, 100)]
        finally:
            sched.close()

    def test_hint_callback_failure_is_absorbed(self):
        def exploding(key, request, result):
            raise RuntimeError("cache said no")

        sched = self._scheduler(
            lambda *a: _result(), workers=1, on_hint_result=exploding
        )
        try:
            sched.start()
            sched.hint([("d", "spec.xseed", None)])
            pacer = threading.Event()
            for _ in range(500):
                if sched.stats.hint_extractions == 1:
                    break
                pacer.wait(0.01)
            assert sched.stats.hint_extractions == 1
            # The scheduler still serves real work after the bad callback.
            joined = sched.register(1, [("d", "real.xseed", None)])
            result, _ = sched.take(1, joined[("d", "real.xseed")])
            assert result.batch.num_rows == 1
        finally:
            sched.close()

    def test_hint_after_close_is_refused(self):
        sched = self._scheduler(lambda *a: _result())
        sched.close()
        assert sched.hint([("d", "spec.xseed", None)]) == 0


class TestServicePrefetch:
    def test_answers_identical_with_prefetch_on(self, repo):
        """Prefetch is a performance lever only: the full comparison grid
        must stay byte-identical with speculative mounts in flight."""
        service = QueryService(
            repo,
            prefetch=True,
            mount_workers=2,
            scheduler_policy=SchedulerPolicy(batch_window_seconds=0.01),
        )
        try:
            report = run_comparison(
                repo, SPEC, clients=4, queries_per_client=3, service=service
            )
            stats = service.stats()
        finally:
            service.close()
        assert report.identical, report.mismatches
        assert report.service_stats.queries_failed == 0
        assert service.scheduler.pending_tasks() == 0
        # The per-tenant predictors observed every completed query.
        assert stats.queries_completed == 12
