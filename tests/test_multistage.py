"""Tests for multi-stage (batched) execution with early stopping."""

import math

import pytest

from repro.core import MultiStageExecutor, PartialMerger, TwoStageExecutor, is_decomposable
from repro.db.errors import PlanError
from repro.db.plan.logical import Aggregate
from repro.ingest import RepositoryBinding


WHOLE_REPO_AVG = "SELECT AVG(sample_value) FROM D"
STATION_SUM = (
    "SELECT SUM(D.sample_value) FROM F JOIN D ON F.uri = D.uri "
    "WHERE F.station = 'ISK'"
)
GROUPED = (
    "SELECT F.channel, COUNT(*) FROM F JOIN D ON F.uri = D.uri "
    "GROUP BY F.channel"
)


class TestConvergence:
    def test_full_run_matches_two_stage(self, executor, ei_db):
        multi = MultiStageExecutor(executor, batch_files=2)
        outcome = multi.execute(WHOLE_REPO_AVG)
        assert outcome.converged
        assert outcome.files_processed == outcome.total_files
        expected = ei_db.execute(WHOLE_REPO_AVG).scalar()
        assert outcome.result.rows()[0][0] == pytest.approx(expected)

    def test_snapshots_progress(self, executor):
        multi = MultiStageExecutor(executor, batch_files=3)
        outcome = multi.execute(WHOLE_REPO_AVG)
        processed = [s.files_processed for s in outcome.snapshots]
        assert processed == sorted(processed)
        assert processed[-1] == outcome.total_files
        assert outcome.snapshots[-1].fraction == 1.0

    def test_running_estimate_available_per_batch(self, executor):
        multi = MultiStageExecutor(executor, batch_files=1)
        outcome = multi.execute(STATION_SUM)
        for snapshot in outcome.snapshots:
            assert snapshot.running_rows is not None
            assert len(snapshot.running_rows) == 1

    def test_grouped_aggregate_supported(self, executor, ei_db):
        multi = MultiStageExecutor(executor, batch_files=2)
        outcome = multi.execute(GROUPED)
        assert sorted(outcome.result.rows()) == sorted(
            ei_db.execute(GROUPED).rows()
        )


class TestEarlyStop:
    def test_max_batches_limits_files(self, executor):
        multi = MultiStageExecutor(executor, batch_files=2, max_batches=1)
        outcome = multi.execute(WHOLE_REPO_AVG)
        assert not outcome.converged
        assert outcome.approximate
        assert outcome.files_processed == 2

    def test_stop_condition_callback(self, executor):
        multi = MultiStageExecutor(
            executor,
            batch_files=1,
            stop_condition=lambda snap: snap.files_processed >= 3,
        )
        outcome = multi.execute(WHOLE_REPO_AVG)
        assert outcome.files_processed == 3
        assert not outcome.converged

    def test_time_budget_stops_eventually(self, executor):
        multi = MultiStageExecutor(
            executor, batch_files=1, time_budget_seconds=0.0
        )
        outcome = multi.execute(WHOLE_REPO_AVG)
        assert outcome.files_processed == 1  # stops after first batch

    def test_approximate_average_is_plausible(self, executor, ei_db):
        multi = MultiStageExecutor(executor, batch_files=2, max_batches=1)
        outcome = multi.execute(WHOLE_REPO_AVG)
        approx = outcome.result.rows()[0][0]
        assert not math.isnan(approx)


class TestValidation:
    def test_batch_files_positive(self, executor):
        with pytest.raises(ValueError):
            MultiStageExecutor(executor, batch_files=0)

    def test_non_aggregate_rejected(self, executor):
        multi = MultiStageExecutor(executor)
        with pytest.raises(PlanError):
            multi.execute("SELECT sample_value FROM D LIMIT 3")

    def test_metadata_only_passthrough(self, executor):
        multi = MultiStageExecutor(executor)
        outcome = multi.execute("SELECT COUNT(*) FROM F")
        assert outcome.total_files == 0
        assert outcome.converged


class TestPartialMerger:
    def aggregate_for(self, executor, sql):
        decomposition = executor.prepare(sql)
        return next(
            n for n in decomposition.qs.walk() if isinstance(n, Aggregate)
        )

    def test_is_decomposable(self, executor):
        agg = self.aggregate_for(executor, WHOLE_REPO_AVG)
        assert is_decomposable(agg)

    def test_avg_expands_to_sum_and_count(self, executor):
        agg = self.aggregate_for(executor, WHOLE_REPO_AVG)
        merger = PartialMerger(agg)
        funcs = [s.func for s in merger.partial_specs]
        assert sorted(funcs) == ["count", "sum"]

    def test_merge_and_finalize(self, executor):
        agg = self.aggregate_for(executor, WHOLE_REPO_AVG)
        merger = PartialMerger(agg)
        names = [s.out_name for s in merger.partial_specs]
        merger.merge([(10.0, 2)], names)
        merger.merge([(20.0, 3)], names)
        (row,) = merger.finalized_rows()
        assert row[0] == pytest.approx(30.0 / 5)

    def test_scalar_zero_files_yields_nan(self, executor):
        agg = self.aggregate_for(executor, WHOLE_REPO_AVG)
        merger = PartialMerger(agg)
        (row,) = merger.finalized_rows()
        assert math.isnan(row[0])
