"""Runtime lock tracing: order-graph cycle detection, traced primitives,
per-lock stats, and guarded-attribute enforcement.

The static analyzer (``tools/lint/concurrency.py``) proves properties of the
source; this suite proves the *runtime* half (:mod:`repro.testing.locktrace`)
catches what only an execution can show — and that the :mod:`repro._sync`
seam hands traced primitives to the real engine classes when tracing is on.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import _sync
from repro.db.buffer import BufferManager
from repro.testing.locktrace import (
    GuardViolation,
    LockOrderError,
    TracedCondition,
    TracedLock,
    TracedRLock,
    current_held,
    guard_class,
    registry,
    tracing,
)


# -- the seeded inversion: A->B on one thread, B->A on another ----------------


def test_lock_order_error_fires_deterministically_on_inversion():
    """The acceptance scenario: establish A->B, then attempt B->A.

    The graph check fires on the *second ordering itself*, not on an
    unlucky interleaving — so the error is deterministic: thread 1 fully
    finishes (join) before thread 2 starts, yet thread 2 still raises.
    """
    with tracing():
        a = TracedLock("A")
        b = TracedLock("B")
        errors: list[BaseException] = []

        def forward() -> None:
            with a:
                with b:
                    pass

        def backward() -> None:
            try:
                with b:
                    with a:  # pragma: no cover - must raise before entering
                        pass
            except LockOrderError as exc:
                errors.append(exc)

        t1 = threading.Thread(target=forward)
        t1.start()
        t1.join()
        t2 = threading.Thread(target=backward)
        t2.start()
        t2.join()

        assert len(errors) == 1
        cycle = errors[0].cycle
        assert cycle[0] == "A" and cycle[-1] == "A" and "B" in cycle
        # The failed acquisition must not leak: B was released by the
        # `with` unwinding, so the thread state is clean.
        assert current_held() == []


def test_consistent_order_never_raises():
    with tracing():
        a = TracedLock("A")
        b = TracedLock("B")
        for _ in range(3):
            with a:
                with b:
                    pass


def test_self_deadlock_detected_instead_of_hanging():
    with tracing():
        lock = TracedLock("L")
        with lock:
            with pytest.raises(LockOrderError, match="self-deadlock"):
                lock.acquire()


def test_three_lock_cycle_reports_path():
    with tracing():
        a, b, c = TracedLock("A"), TracedLock("B"), TracedLock("C")
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        with c:
            with pytest.raises(LockOrderError) as exc_info:
                a.acquire()
        assert exc_info.value.cycle == ["A", "B", "C", "A"]


# -- traced primitives --------------------------------------------------------


def test_rlock_reentrancy_counts_outermost_only():
    with tracing() as reg:
        lock = TracedRLock("R")
        with lock:
            with lock:  # reentrant: no order check, no second acquisition
                assert lock.held_by_current_thread()
            assert lock.held_by_current_thread()
        assert not lock.held_by_current_thread()
        assert reg.snapshot()["R"].acquisitions == 1


def test_two_instances_of_one_class_do_not_false_positive():
    # Class-level naming: two MountPool instances share the name; nesting
    # one inside the other is outside the hierarchy model and must not
    # raise (check_order skips same-name holders).
    with tracing():
        first = TracedLock("Pool._lock")
        second = TracedLock("Pool._lock")
        with first:
            with second:
                pass


def test_contention_and_hold_time_recorded():
    with tracing() as reg:
        lock = TracedLock("L")
        entered = threading.Event()
        release = threading.Event()

        def holder() -> None:
            with lock:
                entered.set()
                release.wait(2.0)

        def taker() -> None:
            with lock:
                pass

        t1 = threading.Thread(target=holder)
        t1.start()
        entered.wait(2.0)
        t2 = threading.Thread(target=taker)
        t2.start()
        time.sleep(0.05)  # let the taker block on the held lock
        release.set()
        t1.join()
        t2.join()

        stats = reg.snapshot()["L"]
        assert stats.acquisitions == 2
        assert stats.contended == 1
        assert stats.wait_seconds > 0.0
        assert stats.hold_seconds > 0.0
        assert stats.max_hold_seconds <= stats.hold_seconds


def test_condition_wait_notify_keeps_bookkeeping_truthful():
    with tracing():
        cond = TracedCondition("C")
        ready: list[bool] = []
        flag = {"set": False}
        parked = threading.Event()

        def waiter() -> None:
            with cond:
                while not flag["set"]:
                    parked.set()
                    cond.wait(2.0)
                # Woken with the lock held again.
                ready.append(cond._lock.held_by_current_thread())

        t = threading.Thread(target=waiter)
        t.start()
        parked.wait(2.0)
        with cond:
            flag["set"] = True
            cond.notify_all()
        t.join(2.0)
        assert ready == [True]
        assert current_held() == []


def test_condition_requires_lock_held():
    with tracing():
        cond = TracedCondition("C")
        with pytest.raises(RuntimeError, match="without its lock held"):
            cond.wait(0.01)
        with pytest.raises(RuntimeError, match="without its lock held"):
            cond.notify()


def test_condition_wait_for_predicate():
    with tracing():
        cond = TracedCondition("C")
        with cond:
            assert cond.wait_for(lambda: True) is True
            assert cond.wait_for(lambda: False, timeout=0.01) is False


def test_release_by_non_owner_raises():
    with tracing():
        lock = TracedLock("L")
        with pytest.raises(RuntimeError, match="does not hold"):
            lock.release()


# -- the _sync seam -----------------------------------------------------------


def test_sync_factories_switch_on_tracing():
    # Force the untraced baseline: CI runs this file under
    # REPRO_LOCK_TRACE=1, where the import-time default is already traced.
    previous = _sync.set_tracing(False)
    try:
        plain = _sync.create_lock("X")
        assert isinstance(plain, type(threading.Lock()))
        assert _sync.lock_snapshot() == {}
        with tracing():
            traced = _sync.create_lock("X")
            assert isinstance(traced, TracedLock)
            traced_cond = _sync.create_condition("C", _sync.create_lock("Y"))
            assert isinstance(traced_cond, TracedCondition)
        after = _sync.create_lock("X")
        assert isinstance(after, type(threading.Lock()))
    finally:
        _sync.set_tracing(previous)


def test_lock_snapshot_delta_windows_activity():
    with tracing():
        lock = _sync.create_lock("Window._lock")
        with lock:
            pass
        before = _sync.lock_snapshot()
        with lock:
            pass
        with lock:
            pass
        delta = _sync.lock_snapshot_delta(before)
        assert delta["Window._lock"].acquisitions == 2


def test_buffer_manager_locks_are_traced_end_to_end():
    """The engine-facing proof: a real BufferManager built under tracing
    routes every residency operation through its named traced lock —
    including flush()/is_resident(), the methods that historically skipped
    the lock entirely."""
    with tracing() as reg:
        buffers = BufferManager()
        buffers.touch("table:e:m", 1024)
        assert buffers.is_resident("table:e:m")
        buffers.flush()
        assert not buffers.is_resident("table:e:m")
        stats = reg.snapshot()["BufferManager._lock"]
        # touch + 2x is_resident + flush, at least.
        assert stats.acquisitions >= 4


def test_buffer_manager_residency_hammer_is_consistent():
    """Regression for the unlocked flush()/warm()/is_resident() races:
    concurrent touch/flush/warm must never corrupt the residency set (a
    torn set raised RuntimeError mid-iteration before the fix)."""
    buffers = BufferManager()
    stop = threading.Event()
    failures: list[BaseException] = []

    def toucher(worker: int) -> None:
        try:
            i = 0
            while not stop.is_set():
                buffers.touch(f"obj:{worker}:{i % 17}", 100)
                buffers.is_resident(f"obj:{worker}:{i % 17}")
                i += 1
        except BaseException as exc:  # pragma: no cover - the regression
            failures.append(exc)

    def flusher() -> None:
        try:
            while not stop.is_set():
                buffers.flush()
                buffers.resident_objects()
                buffers.warm("warm:x", 10)
        except BaseException as exc:  # pragma: no cover - the regression
            failures.append(exc)

    threads = [threading.Thread(target=toucher, args=(w,)) for w in range(3)]
    threads.append(threading.Thread(target=flusher))
    for t in threads:
        t.start()
    time.sleep(0.2)
    stop.set()
    for t in threads:
        t.join(2.0)
    assert failures == []
    assert buffers.stats.objects_read > 0


# -- guarded-attribute enforcement -------------------------------------------


class _Box:
    def __init__(self) -> None:
        self._lock = TracedLock("_Box._lock")
        self._value = 0  # guarded-by: _lock
        self.free = "anything"

    def set_value(self, value: int) -> None:
        with self._lock:
            self._value = value


def test_guard_class_enforces_declarations():
    with tracing():
        guarded = guard_class(_Box)
        box = guarded()
        box.set_value(7)  # under the lock: fine
        box.free = "still fine"  # undeclared attribute: unrestricted
        with pytest.raises(GuardViolation, match="_Box._value"):
            box._value = 13


def test_guard_class_allows_init_and_plain_locks():
    class Plain:
        def __init__(self) -> None:
            self._lock = threading.Lock()  # cannot answer "who holds me"
            self._value = 0  # guarded-by: _lock

    guarded = guard_class(Plain)
    instance = guarded()  # __init__ rebinds freely
    instance._value = 5  # plain lock: enforcement passes through


def test_executor_exports_lock_stats_when_tracing(tiny_repo):
    """StageTimings.lock_stats carries the per-lock counters of one
    execution when tracing is armed, and stays empty otherwise — and a
    traced run answers exactly like an untraced one."""
    from repro.core import TwoStageExecutor
    from repro.db import Database
    from repro.ingest import RepositoryBinding, lazy_ingest_metadata

    sql = (
        "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri "
        "WHERE F.station = 'ISK' AND F.channel = 'BHE'"
    )

    def run():
        db = Database()
        lazy_ingest_metadata(db, tiny_repo)
        executor = TwoStageExecutor(db, RepositoryBinding(tiny_repo))
        return executor.execute(sql)

    previous = _sync.set_tracing(False)
    try:
        cold = run()
        assert cold.timings.lock_stats == {}
    finally:
        _sync.set_tracing(previous)

    with tracing():
        traced = run()
    assert traced.rows == cold.rows
    assert traced.timings.lock_stats, "tracing produced no lock stats"
    assert any(
        name.startswith(("BufferManager", "IngestionCache", "MountPool",
                         "CancellationToken", "QueryGovernor"))
        for name in traced.timings.lock_stats
    )
    assert all(
        stats.acquisitions > 0 for stats in traced.timings.lock_stats.values()
    )


def test_registry_reset_between_tracing_blocks():
    with tracing() as reg:
        with TracedLock("Ephemeral"):
            pass
        assert "Ephemeral" in reg.snapshot()
    with tracing() as reg:
        assert "Ephemeral" not in reg.snapshot()
        assert registry.edges() == {}
