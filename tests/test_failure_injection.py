"""Failure injection: corrupt files, missing files, stale caches.

A system whose second stage reads external files must fail loudly and
cleanly when the repository misbehaves — and the paper's discard-by-default
cache exists precisely because files change underneath the database.
"""

import shutil

import numpy as np
import pytest

from repro.core import CachePolicy, IngestionCache, TwoStageExecutor
from repro.db import Database
from repro.db.errors import IngestError, TruncatedFileError
from repro.ingest import RepositoryBinding, lazy_ingest_metadata
from repro.mseed import (
    FileRepository,
    RepositorySpec,
    XSeedRecord,
    generate_repository,
    write_volume,
)
from repro.mseed.steim import SteimError

SPEC = RepositorySpec(
    stations=("ISK",),
    channels=("BHE",),
    days=2,
    sample_rate=0.02,
    samples_per_record=500,
)

COUNT_SQL = "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri WHERE F.station = 'ISK'"


@pytest.fixture()
def repo(tmp_path):
    generate_repository(tmp_path, SPEC)
    return FileRepository(tmp_path)


@pytest.fixture()
def executor(repo):
    db = Database()
    lazy_ingest_metadata(db, repo)
    return TwoStageExecutor(db, RepositoryBinding(repo))


class TestCorruptFiles:
    def test_truncated_file_fails_cleanly(self, repo, executor):
        uri = repo.uris()[0]
        path = repo.path_of(uri)
        path.write_bytes(path.read_bytes()[:-32])
        with pytest.raises(TruncatedFileError) as excinfo:
            executor.execute(COUNT_SQL)
        assert excinfo.value.uri == uri

    def test_flipped_payload_detected(self, repo, executor):
        uri = repo.uris()[0]
        path = repo.path_of(uri)
        raw = bytearray(path.read_bytes())
        raw[100] ^= 0xFF  # inside the first payload
        path.write_bytes(bytes(raw))
        with pytest.raises(SteimError):
            executor.execute(COUNT_SQL)

    def test_deleted_file_raises_ingest_error(self, repo, executor):
        uri = repo.uris()[0]
        repo.path_of(uri).unlink()
        with pytest.raises(IngestError):
            executor.execute(COUNT_SQL)

    def test_metadata_queries_survive_corruption(self, repo, executor):
        """Stage 1 never touches payloads, so metadata queries still work
        even when every payload is garbage."""
        for uri in repo.uris():
            path = repo.path_of(uri)
            raw = bytearray(path.read_bytes())
            for i in range(64, len(raw)):
                raw[i] = 0xAA
            path.write_bytes(bytes(raw))
        result = executor.execute("SELECT COUNT(*) FROM F")
        assert result.rows[0][0] == len(repo.uris())


class TestParallelMountFailures:
    """Worker failures must match serial diagnostics: the first error
    cancels outstanding mounts and surfaces with the offending file URI."""

    PAR_SPEC = RepositorySpec(
        stations=("ISK", "ANK"),
        channels=("BHE", "BHN"),
        days=2,
        sample_rate=0.02,
        samples_per_record=500,
    )

    ALL_SQL = "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri"

    @pytest.fixture()
    def par_repo(self, tmp_path):
        generate_repository(tmp_path, self.PAR_SPEC)
        return FileRepository(tmp_path)

    def _executor(self, repo, workers=4):
        db = Database()
        lazy_ingest_metadata(db, repo)
        return TwoStageExecutor(
            db, RepositoryBinding(repo), mount_workers=workers
        )

    def test_deleted_file_mid_query_cancels_and_names_uri(self, par_repo):
        executor = self._executor(par_repo)
        total_files = len(par_repo.uris())
        victim = par_repo.uris()[3]
        par_repo.path_of(victim).unlink()
        with pytest.raises(IngestError) as excinfo:
            executor.execute(self.ALL_SQL)
        assert excinfo.value.mount_uri == victim
        # The failed query left no state behind; the engine still works.
        assert executor.mounts.pool is None
        assert (
            executor.execute("SELECT COUNT(*) FROM F").rows[0][0]
            == total_files
        )

    def test_corrupt_payload_raises_same_error_as_serial(self, par_repo):
        victim = par_repo.uris()[2]
        path = par_repo.path_of(victim)
        raw = bytearray(path.read_bytes())
        raw[100] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(SteimError) as serial_exc:
            self._executor(par_repo, workers=1).execute(self.ALL_SQL)
        with pytest.raises(SteimError) as parallel_exc:
            self._executor(par_repo, workers=4).execute(self.ALL_SQL)
        assert type(parallel_exc.value) is type(serial_exc.value)
        assert parallel_exc.value.mount_uri == victim
        assert serial_exc.value.mount_uri == victim

    def test_failure_in_per_file_strategy(self, par_repo):
        from repro.core import PER_FILE

        db = Database()
        lazy_ingest_metadata(db, par_repo)
        executor = TwoStageExecutor(
            db,
            RepositoryBinding(par_repo),
            mount_workers=4,
            strategy=PER_FILE,
        )
        victim = par_repo.uris()[1]
        par_repo.path_of(victim).unlink()
        with pytest.raises(IngestError) as excinfo:
            executor.execute(self.ALL_SQL)
        assert excinfo.value.mount_uri == victim


class TestFreshness:
    def test_discard_policy_sees_updated_file(self, repo, tmp_path):
        """The paper: "the chosen approach inherently ensures up-to-date
        data". Rewrite a file between queries; without caching the second
        query reflects the new contents."""
        db = Database()
        lazy_ingest_metadata(db, repo)
        executor = TwoStageExecutor(
            db, RepositoryBinding(repo),
            cache=IngestionCache(CachePolicy.DISCARD),
        )
        sql = (
            "SELECT MAX(D.sample_value) FROM F JOIN D ON F.uri = D.uri "
            "WHERE F.station = 'ISK'"
        )
        before = executor.execute(sql).rows[0][0]

        # Replace one file's samples with a huge spike (same metadata shape).
        uri = repo.uris()[0]
        from repro.mseed.volume import read_records

        records = read_records(repo.path_of(uri))
        spiked = []
        for record in records:
            samples = record.samples.copy()
            samples[0] = 10**9
            spiked.append(
                XSeedRecord.create(
                    sequence=record.header.sequence,
                    network=record.header.network,
                    station=record.header.station,
                    location=record.header.location,
                    channel=record.header.channel,
                    start_time=record.header.start_time,
                    sample_rate=record.header.sample_rate,
                    samples=samples,
                )
            )
        write_volume(repo.path_of(uri), spiked)

        after = executor.execute(sql).rows[0][0]
        assert after == 10**9
        assert after != before

    @staticmethod
    def _spike_first_sample(repo, uri):
        """Rewrite one file with its first sample replaced by a huge spike."""
        from repro.mseed.volume import read_records

        records = read_records(repo.path_of(uri))
        samples = records[0].samples.copy()
        samples[0] = 10**9
        records[0] = XSeedRecord.create(
            sequence=0,
            network=records[0].header.network,
            station=records[0].header.station,
            location=records[0].header.location,
            channel=records[0].header.channel,
            start_time=records[0].header.start_time,
            sample_rate=records[0].header.sample_rate,
            samples=samples,
        )
        write_volume(repo.path_of(uri), records)

    def test_rewritten_file_invalidates_cache_and_remounts(self, repo):
        """A retained cache entry must not hide an on-disk rewrite: the
        cache-scan compares the stored (mtime_ns, size) signature and falls
        back to a fresh mount when the file changed."""
        db = Database()
        lazy_ingest_metadata(db, repo)
        cache = IngestionCache(CachePolicy.UNBOUNDED)
        executor = TwoStageExecutor(db, RepositoryBinding(repo), cache=cache)
        sql = (
            "SELECT MAX(D.sample_value) FROM F JOIN D ON F.uri = D.uri "
            "WHERE F.station = 'ISK'"
        )
        before = executor.execute(sql).rows[0][0]
        assert before != 10**9

        uri = repo.uris()[0]
        self._spike_first_sample(repo, uri)

        fresh = executor.execute(sql).rows[0][0]
        assert fresh == 10**9  # no stale rows served
        assert executor.mounts.stats.stale_remounts >= 1
        assert cache.stats.invalidations >= 1

        # The remount re-populated the cache with the new contents.
        again = executor.execute(sql).rows[0][0]
        assert again == 10**9

    def test_stale_cache_serves_old_data_with_validation_off(self, repo):
        """Disabling staleness validation restores the historical trade-off:
        the unbounded cache serves stale rows until invalidated by hand."""
        db = Database()
        lazy_ingest_metadata(db, repo)
        cache = IngestionCache(CachePolicy.UNBOUNDED)
        executor = TwoStageExecutor(db, RepositoryBinding(repo), cache=cache)
        executor.mounts.validate_staleness = False
        sql = (
            "SELECT MAX(D.sample_value) FROM F JOIN D ON F.uri = D.uri "
            "WHERE F.station = 'ISK'"
        )
        before = executor.execute(sql).rows[0][0]

        uri = repo.uris()[0]
        self._spike_first_sample(repo, uri)

        stale = executor.execute(sql).rows[0][0]
        assert stale == before  # cache hid the update

        cache.invalidate(uri)
        fresh = executor.execute(sql).rows[0][0]
        assert fresh == 10**9
