"""Unit tests for the stage-2 mount pool (core/mountpool.py).

These test the pool against a synthetic extract function — ordering,
single-flight, backpressure, work stealing, error propagation — without
standing up a repository. End-to-end equivalence under ``mount_workers=4``
lives in test_equivalence_property.py; failure injection through a real
executor lives in test_failure_injection.py.
"""

import threading
import time

import pytest

from repro.core.mounting import ExtractResult
from repro.core.mountpool import MountPool, MountPoolTimings, MountTaskTiming
from repro.db import Column, ColumnBatch, DataType
from repro.db.errors import IngestError


def tagged_batch(uri):
    """A one-row batch whose value identifies the uri it came from."""
    return ColumnBatch(
        ["tag"], [Column.from_pylist(DataType.INT64, [hash(uri) % 10**9])]
    )


def tagged_result(uri, io_seconds=0.0):
    return ExtractResult(batch=tagged_batch(uri), io_seconds=io_seconds)


class RecordingExtract:
    """An ExtractFn that records call order, threads, and concurrency."""

    def __init__(self, delay=0.0, fail_uris=(), block_uris=()):
        self.delay = delay
        self.fail_uris = set(fail_uris)
        self.block_uris = set(block_uris)
        self.unblock = threading.Event()
        self.calls = []
        self.threads = {}
        self.requests = {}
        self._lock = threading.Lock()

    def __call__(self, uri, table_name, request=None):
        with self._lock:
            self.calls.append(uri)
            self.threads[uri] = threading.get_ident()
            self.requests[uri] = request
        if uri in self.block_uris:
            assert self.unblock.wait(timeout=10), "extract left blocked"
        if self.delay:
            time.sleep(self.delay)
        if uri in self.fail_uris:
            raise IngestError(f"injected failure for {uri}")
        return tagged_result(uri, 0.008)  # pretend one simulated seek


def keys(n):
    return [("D", f"file-{i:03}.xseed") for i in range(n)]


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_results_match_keys_in_plan_order(workers):
    tasks = keys(20)
    extract = RecordingExtract()
    with MountPool(extract, max_workers=workers) as pool:
        pool.prefetch(tasks)
        for table_name, uri in tasks:
            batch = pool.take(uri, table_name).batch
            assert batch.column("tag").values[0] == hash(uri) % 10**9
    assert sorted(extract.calls) == sorted(uri for _, uri in tasks)
    assert pool.timings.files == 20


def test_serial_fallback_stays_on_consumer_thread():
    tasks = keys(6)
    extract = RecordingExtract()
    with MountPool(extract, max_workers=1) as pool:
        pool.prefetch(tasks)
        assert pool._executor is None  # no threads were started
        for table_name, uri in tasks:
            pool.take(uri, table_name)
    me = threading.get_ident()
    assert all(ident == me for ident in extract.threads.values())
    # Inline extraction still extracts lazily, in take order.
    assert extract.calls == [uri for _, uri in tasks]


def test_single_flight_extracts_once_serves_every_take():
    (key,) = keys(1)
    table_name, uri = key
    # A self-join takes the same file twice; a second distinct key keeps the
    # pool out of its serial fallback.
    other = ("D", "other.xseed")
    extract = RecordingExtract()
    with MountPool(extract, max_workers=2) as pool:
        pool.prefetch([key, other, key])
        first = pool.take(uri, table_name).batch
        second = pool.take(other[1], other[0]).batch
        third = pool.take(uri, table_name).batch
    assert extract.calls.count(uri) == 1
    assert first.column("tag").values[0] == third.column("tag").values[0]
    assert second.column("tag").values[0] == hash(other[1]) % 10**9


def test_unprefetched_take_extracts_inline():
    extract = RecordingExtract()
    with MountPool(extract, max_workers=4) as pool:
        batch = pool.take("surprise.xseed", "D").batch
    assert batch.num_rows == 1
    assert extract.threads["surprise.xseed"] == threading.get_ident()


def test_backpressure_bounds_unconsumed_batches():
    """At most max_inflight batches are running-or-unconsumed at once."""
    inflight = 3
    produced = []
    consumed = []
    lock = threading.Lock()
    high_water = [0]

    def extract(uri, table_name, request=None):
        with lock:
            produced.append(uri)
            high_water[0] = max(
                high_water[0], len(produced) - len(consumed)
            )
        return tagged_result(uri)

    tasks = keys(24)
    with MountPool(extract, max_workers=4, max_inflight=inflight) as pool:
        pool.prefetch(tasks)
        for table_name, uri in tasks:
            time.sleep(0.002)  # slow consumer: producers must wait
            pool.take(uri, table_name)
            with lock:
                consumed.append(uri)
    assert high_water[0] <= inflight
    assert len(produced) == len(tasks)


def test_slow_consumer_never_deadlocks():
    """Regression: workers once claimed tasks before backpressure slots, so
    a consumer waiting on a claimed-but-slotless task deadlocked against
    completed batches for later branches holding every slot."""
    tasks = keys(40)
    extract = RecordingExtract()
    with MountPool(extract, max_workers=4, max_inflight=4) as pool:
        pool.prefetch(tasks)
        for table_name, uri in tasks:
            time.sleep(0.001)
            pool.take(uri, table_name)
    assert pool.timings.files == len(tasks)


def test_consumer_steals_when_workers_are_busy():
    """Work conservation: a branch whose task no worker has claimed yet is
    extracted inline instead of waiting behind the blocked workers."""
    blocked = [("D", "slow-a.xseed"), ("D", "slow-b.xseed")]
    wanted = ("D", "wanted.xseed")
    extract = RecordingExtract(block_uris={uri for _, uri in blocked})
    pool = MountPool(extract, max_workers=2)
    try:
        pool.prefetch(blocked + [wanted])
        # Both workers are stuck inside the blocking extracts; the third
        # task is still queued, so the consumer takes it inline.
        deadline = time.monotonic() + 5
        while len(extract.calls) < 2 and time.monotonic() < deadline:
            time.sleep(0.001)
        batch = pool.take(wanted[1], wanted[0]).batch
        assert extract.threads[wanted[1]] == threading.get_ident()
        assert batch.num_rows == 1
        extract.unblock.set()
        for table_name, uri in blocked:
            pool.take(uri, table_name)
    finally:
        extract.unblock.set()
        pool.close()


def test_worker_failure_cancels_and_surfaces_uri():
    tasks = keys(12)
    bad_uri = tasks[3][1]
    extract = RecordingExtract(delay=0.002, fail_uris={bad_uri})
    with MountPool(extract, max_workers=4, max_inflight=4) as pool:
        pool.prefetch(tasks)
        with pytest.raises(IngestError) as excinfo:
            for table_name, uri in tasks:
                pool.take(uri, table_name)
        assert excinfo.value.mount_uri == bad_uri
        assert pool.first_error is excinfo.value
        assert pool.failed_uri == bad_uri
        # The pool is poisoned: every later take re-raises the first error.
        with pytest.raises(IngestError):
            pool.take(tasks[-1][1], tasks[-1][0])
    # Cancellation kept the pool from extracting the whole repository.
    assert len(extract.calls) < len(tasks)


@pytest.mark.parametrize("workers", [2, 4])
def test_skip_mode_poisons_only_the_failed_key(workers):
    """With fail_fast=False one bad file must not cancel the rest: every
    other branch completes, and only takes of the failed key raise."""
    tasks = keys(12)
    bad_uri = tasks[3][1]
    extract = RecordingExtract(delay=0.002, fail_uris={bad_uri})
    with MountPool(extract, max_workers=workers, fail_fast=False) as pool:
        pool.prefetch(tasks)
        failures = []
        for table_name, uri in tasks:
            try:
                batch = pool.take(uri, table_name).batch
            except IngestError as exc:
                failures.append((uri, exc))
                continue
            assert batch.column("tag").values[0] == hash(uri) % 10**9
        assert [uri for uri, _ in failures] == [bad_uri]
        assert failures[0][1].mount_uri == bad_uri
        assert pool.first_error is None  # pool never poisoned
    # Every file was attempted — nothing was cancelled.
    assert sorted(extract.calls) == sorted(uri for _, uri in tasks)


def test_skip_mode_serial_fallback():
    tasks = keys(6)
    bad_uri = tasks[2][1]
    extract = RecordingExtract(fail_uris={bad_uri})
    with MountPool(extract, max_workers=1, fail_fast=False) as pool:
        pool.prefetch(tasks)
        outcomes = []
        for table_name, uri in tasks:
            try:
                pool.take(uri, table_name)
                outcomes.append("ok")
            except IngestError:
                outcomes.append("fail")
    assert outcomes == ["ok", "ok", "fail", "ok", "ok", "ok"]


def test_invalid_configuration_rejected():
    with pytest.raises(ValueError):
        MountPool(lambda u, t, r=None: tagged_result(u), max_workers=0)
    with pytest.raises(ValueError):
        MountPool(lambda u, t, r=None: tagged_result(u), max_inflight=0)


def test_timings_critical_path_math():
    timings = MountPoolTimings(
        tasks=[
            MountTaskTiming("a", "D", worker=0, extract_seconds=0.1, io_seconds=0.1),
            MountTaskTiming("b", "D", worker=0, extract_seconds=0.1, io_seconds=0.1),
            MountTaskTiming("c", "D", worker=1, extract_seconds=0.2, io_seconds=0.1),
        ]
    )
    assert timings.files == 3
    assert timings.serial_seconds == pytest.approx(0.7)
    assert timings.worker_seconds == {0: pytest.approx(0.4), 1: pytest.approx(0.3)}
    assert timings.wall_seconds == pytest.approx(0.4)  # busiest chain
    assert timings.speedup == pytest.approx(0.7 / 0.4)
    assert MountPoolTimings().wall_seconds == 0.0
    assert MountPoolTimings().speedup == 1.0
