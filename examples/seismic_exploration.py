"""A seismologist's exploration session — the paper's motivating workflow.

The explorer hunts for seismic events across stations without knowing in
advance where they are (§1: "it becomes harder to make exact definitions of
interesting knowledge"). The session:

1. quick-looks each station's day (Query 1 style short-term averages),
2. retrieves the most promising station's waveform (Query 2 style),
3. runs an STA/LTA detector over the retrieved samples,
4. zooms into each detection.

An unbounded ingestion cache keeps revisited files hot, and the session
report shows the data-to-insight accounting.

Run: ``python examples/seismic_exploration.py``
"""

import tempfile
import time

import numpy as np

from repro.core import CachePolicy, IngestionCache, TwoStageExecutor
from repro.db import Database, format_timestamp
from repro.explore import ExplorationSession, detect_events, waveform_panel
from repro.ingest import RepositoryBinding, lazy_ingest_metadata
from repro.mseed import FileRepository, RepositorySpec, WaveformSpec, generate_repository

SPEC = RepositorySpec(
    stations=("ISK", "ANK", "IZM"),
    channels=("BHE", "BHN", "BHZ"),
    days=2,
    sample_rate=0.2,
    samples_per_record=3600,
    waveform=WaveformSpec(events_per_hour=0.6),
)
DAY = "2010-01-10"


def main() -> None:
    with tempfile.TemporaryDirectory() as root:
        generate_repository(root, SPEC)
        repository = FileRepository(root)

        started = time.perf_counter()
        db = Database()
        lazy_ingest_metadata(db, repository)
        setup_seconds = time.perf_counter() - started

        executor = TwoStageExecutor(
            db,
            RepositoryBinding(repository),
            cache=IngestionCache(CachePolicy.UNBOUNDED),
        )
        session = ExplorationSession(executor, setup_seconds=setup_seconds)

        # Step 1 — quick look: which station was loudest that day?
        print(f"Quick looks over {DAY}:")
        loudest, loudest_level = None, -1.0
        for station in SPEC.stations:
            level = abs(session.quick_look(station, "BHZ", DAY))
            print(f"  {station}: |daily mean| = {level:10.3f}")
            if level > loudest_level:
                loudest, loudest_level = station, level
        print(f"-> {loudest} looks most interesting.\n")

        # Step 2 — retrieve its waveform (the paper's Query 2).
        result = session.zoom(
            loudest, DAY, f"{DAY}T00:00:00", f"{DAY}T23:59:59"
        )
        values = np.asarray(result.column("sample_value"), dtype=np.float64)
        times = np.asarray(result.column("sample_time"), dtype=np.int64)
        print(f"Retrieved {len(values):,} samples from {loudest} (all channels).")
        print(waveform_panel(times, values, width=72, label=f"{loudest} {DAY}"))

        # Step 3 — STA/LTA event hunt over the retrieved signal.
        events = detect_events(
            values, sta_window=8, lta_window=200, on_threshold=6.0
        )
        print(f"STA/LTA flagged {len(events)} candidate event(s).")

        # Step 4 — zoom into each detection (cache makes these near-free).
        for i, event in enumerate(events[:3]):
            t0 = int(times[event.start_index]) - 120_000_000
            t1 = int(times[min(event.end_index, len(times) - 1)]) + 120_000_000
            zoomed = session.zoom(
                loudest, DAY, format_timestamp(t0), format_timestamp(t1)
            )
            print(
                f"  event {i}: peak ratio {event.peak_ratio:5.1f}, "
                f"zoom window returned {zoomed.num_rows} samples "
                f"({session.history[-1].cache_scans} cache-scans, "
                f"{session.history[-1].files_mounted} mounts)"
            )

        print("\n" + session.report())


if __name__ == "__main__":
    main()
