"""Generalization (§5): the same paradigm over a different file format.

"Different scientific domains usually have different formats … we can design
a generalized medium for the scientific developer [to] define domain- and
format-specific mappings." This example builds a repository of CSV
time-series files (a toy weather-station archive), registers the CSV format
extractor, and runs two-stage queries over it — nothing else changes: the
schema, the executor, and the SQL are exactly the seismology ones.

Run: ``python examples/csv_weather.py``
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import TwoStageExecutor
from repro.db import Database, parse_timestamp
from repro.ingest import (
    CsvExtractor,
    FormatRegistry,
    RepositoryBinding,
    lazy_ingest_metadata,
    write_csv_timeseries,
)
from repro.mseed import FileRepository

STATIONS = {"AMS": 9.5, "BER": 6.0, "MAD": 14.0}  # mean winter temp, °C
DAYS = ["2010-01-10", "2010-01-11", "2010-01-12"]
SAMPLES_PER_DAY = 144  # one reading every 10 minutes


def build_weather_repository(root: Path) -> None:
    rng = np.random.default_rng(7)
    for station, mean_temp in STATIONS.items():
        for day in DAYS:
            start = parse_timestamp(day)
            hours = np.arange(SAMPLES_PER_DAY) / 6.0
            diurnal = 4.0 * np.sin(2 * np.pi * (hours - 9) / 24.0)
            noise = rng.normal(0.0, 0.8, SAMPLES_PER_DAY)
            temps = mean_temp + diurnal + noise
            write_csv_timeseries(
                root / station / f"{station}.{day}.tscsv",
                network="WX",
                station=station,
                location="",
                channel="TMP",
                sample_rate=1.0 / 600.0,
                start_time=start,
                values=temps,
            )


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        build_weather_repository(root)
        repository = FileRepository(root, suffix=".tscsv")
        print(
            f"Weather repository: {len(repository)} CSV files, "
            f"{repository.total_bytes():,} bytes"
        )

        registry = FormatRegistry()
        registry.register(CsvExtractor())

        db = Database()
        report = lazy_ingest_metadata(db, repository, registry)
        print(
            f"Metadata loaded in {report.load_seconds * 1000:.1f} ms "
            f"({report.samples:,} readings described, none ingested)\n"
        )

        # prune_by_time opts into the §5 metadata-exploitation extension:
        # queries that constrain only the sample time skip files whose
        # metadata time span cannot overlap.
        executor = TwoStageExecutor(
            db,
            RepositoryBinding(
                repository, registry=registry, prune_by_time=True
            ),
        )

        # Which station-days are available? Pure metadata — stage 1 only.
        catalog = executor.execute(
            "SELECT station, COUNT(*) AS files, SUM(nsamples) AS readings "
            "FROM F GROUP BY station ORDER BY station"
        )
        print("Station inventory (answered from metadata alone):")
        print(catalog.result.pretty())
        assert catalog.result.stats.files_mounted == 0

        # Average afternoon temperature in Madrid on one day: mounts 1 file.
        outcome = executor.execute(
            "SELECT AVG(D.sample_value) "
            "FROM F JOIN D ON F.uri = D.uri "
            "WHERE F.station = 'MAD' "
            "AND D.sample_time > '2010-01-11T12:00:00' "
            "AND D.sample_time < '2010-01-11T18:00:00'"
        )
        print(
            f"\nMAD afternoon mean on 2010-01-11: {outcome.rows[0][0]:.2f} °C "
            f"({outcome.result.stats.files_mounted} CSV file mounted, "
            f"{outcome.breakpoint.n_files} of interest)"
        )

        # Hottest reading across all stations on the 12th: 3 files mounted.
        hottest = executor.execute(
            "SELECT F.station, MAX(D.sample_value) AS peak "
            "FROM F JOIN D ON F.uri = D.uri "
            "WHERE D.sample_time > '2010-01-12T00:00:00' "
            "AND D.sample_time < '2010-01-13T00:00:00' "
            "GROUP BY F.station ORDER BY peak DESC"
        )
        print("\nPeak temperatures on 2010-01-12:")
        print(hottest.result.pretty())
        print(
            f"({hottest.result.stats.files_mounted} files mounted out of "
            f"{len(repository)})"
        )


if __name__ == "__main__":
    main()
