"""Cache management and derived metadata — the §5 research directions, live.

Part 1 replays an overlapping zoom workload under three cache
configurations (the paper's default discard, file-granular, tuple-granular)
and compares mounts vs cache-scans.

Part 2 turns on derived metadata: summaries collected as a side-effect of
mounting answer later aggregate queries at the breakpoint with zero mounts.

Run: ``python examples/cache_and_derived.py``
"""

import tempfile
import time

from repro.core import (
    CacheGranularity,
    CachePolicy,
    DerivedMetadataStore,
    IngestionCache,
    TwoStageExecutor,
)
from repro.db import Database
from repro.explore import make_query2
from repro.ingest import RepositoryBinding, lazy_ingest_metadata
from repro.mseed import FileRepository, RepositorySpec, generate_repository

SPEC = RepositorySpec(
    stations=("ISK", "ANK"),
    channels=("BHE", "BHZ"),
    days=2,
    sample_rate=0.2,
    samples_per_record=3600,
)
DAY = "2010-01-10"

# Narrowing zooms into the same station-day: classic revisiting pattern.
ZOOMS = [
    (f"{DAY}T08:00:00", f"{DAY}T16:00:00"),
    (f"{DAY}T10:00:00", f"{DAY}T14:00:00"),
    (f"{DAY}T11:00:00", f"{DAY}T12:00:00"),
    (f"{DAY}T11:20:00", f"{DAY}T11:40:00"),
]


def run_workload(executor) -> float:
    started = time.perf_counter()
    for window_start, window_end in ZOOMS:
        executor.execute(make_query2("ISK", DAY, window_start, window_end))
    return time.perf_counter() - started


def main() -> None:
    with tempfile.TemporaryDirectory() as root:
        generate_repository(root, SPEC)
        repository = FileRepository(root)
        binding = RepositoryBinding(repository)

        def fresh_db() -> Database:
            db = Database()
            lazy_ingest_metadata(db, repository)
            return db

        print("Part 1 — cache configurations over 4 narrowing zooms:\n")
        configs = [
            ("discard (paper default)", IngestionCache(CachePolicy.DISCARD)),
            (
                "unbounded, file-granular",
                IngestionCache(CachePolicy.UNBOUNDED, CacheGranularity.FILE),
            ),
            (
                "unbounded, tuple-granular",
                IngestionCache(CachePolicy.UNBOUNDED, CacheGranularity.TUPLE),
            ),
        ]
        for name, cache in configs:
            executor = TwoStageExecutor(fresh_db(), binding, cache=cache)
            seconds = run_workload(executor)
            stats = executor.mounts.stats
            print(
                f"  {name:26}: {seconds * 1000:7.1f} ms, "
                f"{stats.mounts} mounts, {stats.cache_scans} cache-scans, "
                f"cache holds {cache.stats.current_bytes:,} bytes"
            )

        print(
            "\n  (tuple-granular retains only the zoomed interval — less "
            "memory — but\n   a later, wider window would force a re-mount: "
            "the §3 trade-off.)"
        )

        print("\nPart 2 — derived metadata answers summaries without files:\n")
        db = fresh_db()
        derived = DerivedMetadataStore(db)
        executor = TwoStageExecutor(db, binding, derived=derived)
        summary = (
            "SELECT AVG(D.sample_value), MAX(D.sample_value) "
            "FROM F JOIN D ON F.uri = D.uri WHERE F.station = 'ISK'"
        )
        first = executor.execute(summary)
        print(
            f"  first run : {first.timings.total_seconds * 1000:7.1f} ms, "
            f"{first.result.stats.files_mounted} mounts "
            f"(collected derived metadata as a side-effect)"
        )
        second = executor.execute(summary)
        print(
            f"  second run: {second.timings.total_seconds * 1000:7.1f} ms, "
            f"{second.result.stats.files_mounted} mounts, "
            f"answered_from_derived={second.breakpoint.answered_from_derived}"
        )
        assert second.rows[0][0] == first.rows[0][0]
        print(f"  identical answers: AVG={first.rows[0][0]:.4f}  ✓")


if __name__ == "__main__":
    main()
