"""Interactive query execution: the explorer controls the query's destiny.

§5: "why can't he have a way to interfere with his own query's destiny,
when he sees that his query is running longer than he expected?" The
breakpoint between stages makes that possible:

* a cost budget aborts a would-be runaway query before any file is mounted,
* a limit policy degrades it to an approximate answer instead,
* a callback lets interactive code (here: a simulated explorer) decide,
* multi-stage execution streams a converging estimate batch by batch.

Run: ``python examples/interactive_breakpoint.py``
"""

import tempfile

from repro.core import (
    AbortAboveCost,
    CallbackPolicy,
    DestinyAction,
    DestinyDecision,
    LimitFilesAboveCost,
    MultiStageExecutor,
    TwoStageExecutor,
)
from repro.db import Database, QueryAbortedError
from repro.ingest import RepositoryBinding, lazy_ingest_metadata
from repro.mseed import FileRepository, RepositorySpec, generate_repository

SPEC = RepositorySpec(
    stations=("ISK", "ANK", "IZM"),
    channels=("BHE", "BHZ"),
    days=3,
    sample_rate=0.1,
    samples_per_record=1800,
)

# A poorly phrased explorative query: no metadata constraint at all, so its
# data of interest is the whole repository — the paper's worst case.
RUNAWAY = "SELECT AVG(sample_value) FROM D"


def main() -> None:
    with tempfile.TemporaryDirectory() as root:
        generate_repository(root, SPEC)
        repository = FileRepository(root)
        db = Database()
        lazy_ingest_metadata(db, repository)
        binding = RepositoryBinding(repository)

        # 1. Abort policy: the breakpoint stops the runaway before stage 2.
        guarded = TwoStageExecutor(
            db, binding, destiny=AbortAboveCost(max_files=6)
        )
        print("1) AbortAboveCost(max_files=6):")
        try:
            guarded.execute(RUNAWAY)
        except QueryAbortedError as err:
            info = err.breakpoint_info
            print(f"   aborted: {err}")
            print(f"   (estimate said: {info.estimate.summary()})")

        # 2. Limit policy: approximate instead of aborting.
        limited = TwoStageExecutor(
            db, binding, destiny=LimitFilesAboveCost(max_files=6, keep_files=4)
        )
        outcome = limited.execute(RUNAWAY)
        print("\n2) LimitFilesAboveCost(keep_files=4):")
        print(
            f"   approximate answer {outcome.rows[0][0]:.4f} from "
            f"{outcome.result.stats.files_mounted} of "
            f"{len(repository)} files (approximate={outcome.approximate})"
        )

        # 3. Callback policy: a (simulated) explorer reads the estimate and
        # decides live.
        def explorer_decides(report):
            print(f"   explorer sees: {report.summary()}")
            if report.est_stage2_seconds > 60:
                return DestinyDecision(DestinyAction.ABORT, reason="too slow")
            return DestinyDecision(
                DestinyAction.PROCEED, reason="looks worth the wait"
            )

        interactive = TwoStageExecutor(
            db, binding, destiny=CallbackPolicy(explorer_decides)
        )
        print("\n3) CallbackPolicy (interactive decision):")
        outcome = interactive.execute(RUNAWAY)
        print(f"   exact answer {outcome.rows[0][0]:.4f}")

        # 4. Multi-stage execution: ingest in batches, watch convergence.
        print("\n4) Multi-stage execution (batches of 4 files):")
        multi = MultiStageExecutor(
            TwoStageExecutor(db, binding), batch_files=4
        )
        result = multi.execute(RUNAWAY)
        for snap in result.snapshots:
            estimate = snap.running_rows[0][0]
            print(
                f"   after {snap.files_processed:2d}/{snap.total_files} files: "
                f"running AVG = {estimate:10.4f} "
                f"({snap.elapsed_seconds * 1000:6.1f} ms)"
            )
        print(f"   converged: {result.converged}")


if __name__ == "__main__":
    main()
