"""Quickstart: two-stage query execution over a scientific file repository.

Builds a small synthetic seismic repository, loads *only metadata* into the
database (the ALi setup), and runs the paper's Query 1 — the average of a
short waveform window — watching the two execution stages work: stage 1
identifies the files of interest from metadata, stage 2 mounts exactly those
files and finishes the plan.

Run: ``python examples/quickstart.py``
"""

import tempfile

from repro.core import TwoStageExecutor
from repro.db import Database
from repro.ingest import RepositoryBinding, eager_ingest, lazy_ingest_metadata
from repro.mseed import FileRepository, RepositorySpec, generate_repository


def main() -> None:
    spec = RepositorySpec(
        stations=("ISK", "ANK"),
        channels=("BHE", "BHZ"),
        days=2,
        sample_rate=0.1,
        samples_per_record=1800,
    )
    with tempfile.TemporaryDirectory() as root:
        print(f"Generating {spec.file_count} xSEED files under {root} ...")
        generate_repository(root, spec)
        repository = FileRepository(root)

        # The ALi world: metadata only, near-instant setup.
        db = Database()
        report = lazy_ingest_metadata(db, repository)
        print(
            f"Loaded metadata for {report.files} files / "
            f"{report.records} records in {report.load_seconds * 1000:.1f} ms "
            f"({report.metadata_bytes:,} bytes). Actual data: 0 rows."
        )

        executor = TwoStageExecutor(db, RepositoryBinding(repository))
        query1 = """
            SELECT AVG(D.sample_value)
            FROM F JOIN R ON F.uri = R.uri
            JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
            WHERE F.station = 'ISK' AND F.channel = 'BHE'
            AND R.start_time > '2010-01-10T00:00:00.000'
            AND R.start_time < '2010-01-10T23:59:59.999'
            AND D.sample_time > '2010-01-10T10:00:00.000'
            AND D.sample_time < '2010-01-10T12:00:00.000'
        """

        print("\nThe single optimized plan (Qf marked — the paper's bold):")
        print(executor.explain(query1))

        outcome = executor.execute(query1)
        print("\nAt the breakpoint the system knew:")
        print(outcome.breakpoint.summary())
        print(f"\nAnswer: {outcome.rows[0][0]:.6f}")
        print(
            f"stage 1 {outcome.timings.stage1_seconds * 1000:.1f} ms, "
            f"stage 2 {outcome.timings.stage2_seconds * 1000:.1f} ms"
        )

        # Sanity: the eager baseline agrees.
        ei = Database()
        ei_report = eager_ingest(ei, repository)
        print(
            f"\nFor comparison, eager ingestion took "
            f"{ei_report.total_seconds:.3f} s up-front "
            f"({ei_report.samples:,} samples decompressed)."
        )
        assert abs(ei.execute(query1).scalar() - outcome.rows[0][0]) < 1e-9
        print("Eager baseline returns the identical answer. ✓")


if __name__ == "__main__":
    main()
